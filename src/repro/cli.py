"""Command-line interface.

Mirrors the paper artifact's shell-script workflow (Appendix §5) as a
single entry point::

    python -m repro run --workload bfs --dataset kron-s --policy thp \
        --scenario high-pressure
    python -m repro figure fig07 --workloads bfs --datasets kron-s
    python -m repro datasets
    python -m repro advise --dataset twitter-s
    python -m repro profiles

Subcommands:

``run``
    Simulate one cell and print its metrics (the paper's
    ``app_output``/``results.txt`` numbers).
``figure``
    Regenerate one paper figure's rows (the ``thp.sh``-style drivers).
``tournament``
    Sweep the policy zoo across scenario axes and rank a leaderboard
    (see docs/policies.md).
``datasets``
    List the registry with Table 2 statistics.
``advise``
    Print the page-size advisor's report for a dataset.
``profiles``
    List machine profiles and their geometry.
``runs``
    Inspect, compact or merge run journals (``list`` / ``show`` /
    ``gc`` / ``merge``); pairs with ``run``/``figure``'s ``--journal``
    and ``--resume`` flags (see docs/checkpointing.md).
``work``
    Remote sweep worker: pulls leased cells from a ``figure
    --distribute`` coordinator and streams results back (see
    docs/service.md, "Distributed sweeps").
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import Optional, Sequence

from .config import PROFILES, get_profile
from .errors import ReproError
from .units import format_bytes


def _add_common_machine_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--profile",
        default="scaled",
        choices=sorted(PROFILES),
        help="machine profile (default: scaled)",
    )
    parser.add_argument(
        "--tlb-engine",
        default="auto",
        choices=("exact", "batch", "auto"),
        dest="tlb_engine",
        help="translation engine: 'exact' (reference per-lookup "
        "simulator), 'batch' (vectorized set-wise engine, identical "
        "counts), or 'auto' (batch after a per-geometry equivalence "
        "self-check; default)",
    )


def _add_resilience_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--faults",
        default=None,
        metavar="PLAN",
        help="fault-injection plan: comma list of "
        "site[:prob|:after=N|:every=N][:max=M] "
        "(e.g. 'compaction:0.5,swap-out:after=100'); see docs/faults.md",
    )
    parser.add_argument(
        "--fault-seed",
        type=int,
        default=0,
        metavar="SEED",
        help="seed for the fault plan's per-site RNGs (default: 0)",
    )
    parser.add_argument(
        "--retries",
        type=int,
        default=2,
        metavar="N",
        help="max retries per cell for injected faults (default: 2)",
    )
    parser.add_argument(
        "--cell-budget",
        type=int,
        default=None,
        metavar="ACCESSES",
        help="cap on simulated accesses per cell (runaway guard; "
        "default: unlimited)",
    )
    parser.add_argument(
        "--sanitize",
        action="store_true",
        help="enable MemSan, the simulated-memory invariant checker "
        "(equivalent to REPRO_SANITIZE=1; see docs/static-analysis.md)",
    )


def _add_runstate_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--journal",
        default=None,
        metavar="PATH",
        help="crash-safe run journal (JSONL); every cell outcome is "
        "recorded durably (see docs/checkpointing.md)",
    )
    parser.add_argument(
        "--resume",
        action="store_true",
        help="skip cells already completed in --journal (spec-hash "
        "match); failed/in-flight/torn cells re-run",
    )
    parser.add_argument(
        "--cell-cycles",
        type=int,
        default=None,
        metavar="CYCLES",
        help="watchdog: cap on simulated cycles per cell "
        "(deterministic; default: unlimited)",
    )
    parser.add_argument(
        "--cell-deadline",
        type=float,
        default=None,
        metavar="SECONDS",
        help="watchdog: wall-clock deadline per cell "
        "(catches host-side hangs; default: unlimited)",
    )


def _add_trace_arg(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--trace",
        default=None,
        metavar="PATH",
        help="record structured observability events and write them as "
        "JSONL to PATH (inspect with 'repro trace'; see "
        "docs/observability.md)",
    )


def _make_runner(args: argparse.Namespace):
    from .analysis.sanitizer import set_sanitize
    from .experiments import ExperimentRunner, RunConfig

    run_config = RunConfig.from_cli(args)
    if run_config.sanitize:
        # Global switch too: spawn-mode pool workers and any library
        # code that consults the ambient setting must agree.
        set_sanitize(True)
    return ExperimentRunner(
        config=get_profile(args.profile), run_config=run_config
    )


def _close_runner(runner) -> None:
    """Release the sweep's journal lock now that the command is done
    (atexit would release it anyway; in-process callers shouldn't have
    to wait for interpreter shutdown)."""
    journal = getattr(runner.run_config, "journal", None)
    if journal is not None:
        journal.close()


def _write_trace(args: argparse.Namespace, runner) -> None:
    """Flush an armed runner's trace log to ``--trace PATH``."""
    path = getattr(args, "trace", None)
    if not path:
        return
    from .obs import write_trace_jsonl

    entries = list(runner.trace_log)
    harness_entry = runner.harness_trace_entry()
    if harness_entry is not None:
        # Sweep-level resilience events ride in a synthetic trailing
        # "harness/-/-/-" cell (see docs/observability.md).
        entries.append(harness_entry)
    lines = write_trace_jsonl(path, entries)
    print(f"wrote {lines} trace event(s) to {path}", file=sys.stderr)


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Simulated reproduction of 'The Implications of Page Size "
            "Management on Graph Analytics' (IISWC 2022)"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser("run", help="simulate one experiment cell")
    run.add_argument("--workload", default="bfs")
    run.add_argument("--dataset", default="kron-s")
    run.add_argument(
        "--policy",
        default="base4k",
        help="policy name (see 'repro policies'), "
        "selective:<s>[:<reorder>], or a zoo spec NAME[:k=v,...] "
        "(e.g. 'ingens:threshold=0.8', 'advisor')",
    )
    run.add_argument(
        "--scenario",
        default="fresh",
        help="fresh | high-pressure | low-pressure | frag-50 | "
        "oversubscribed | constrained:<gb> | fragmented:<level>[:<gb>]",
    )
    _add_common_machine_args(run)
    _add_resilience_args(run)
    _add_runstate_args(run)
    _add_trace_arg(run)

    figure = sub.add_parser("figure", help="regenerate one paper figure")
    figure.add_argument(
        "figure_id",
        help="e.g. fig01, fig07, fig11, headline — or 'all'",
    )
    figure.add_argument("--workloads", default=None,
                        help="comma list (default: figure's own)")
    figure.add_argument("--datasets", default=None,
                        help="comma list (default: all Table 2 inputs)")
    figure.add_argument(
        "--policy", action="append", default=None, metavar="SPEC",
        help="(tournament only) zoo policy spec to enter; repeat or "
        "comma-separate (default: the stock lineup)",
    )
    figure.add_argument(
        "--json", action="store_true", help="emit JSON instead of a table"
    )
    figure.add_argument(
        "--out",
        default=None,
        metavar="DIR",
        help="also save <figure_id>.txt and .json under DIR "
        "(atomic write: never leaves torn files)",
    )
    figure.add_argument(
        "--workers",
        type=int,
        default=int(os.environ.get("REPRO_WORKERS", "1")),
        metavar="N",
        help="process fan-out for the figure's cell sweep: 1 = serial "
        "(default), N > 1 = work-stealing pool of N workers, 0 = one "
        "per CPU; output and journal bytes are identical to a serial "
        "run (env default: REPRO_WORKERS; see docs/performance.md)",
    )
    figure.add_argument(
        "--distribute", default=None, metavar="ADDR",
        help="shard the sweep across remote 'repro work' agents: "
        "listen on ADDR (socket path or host:port) and lease cells "
        "to pulling workers; degrades to local execution when no "
        "worker is reachable (see docs/service.md)",
    )
    figure.add_argument(
        "--lease-seconds", type=float, default=5.0, metavar="SECONDS",
        help="(--distribute) lease duration per cell; workers renew at "
        "a third of this (default: 5)",
    )
    figure.add_argument(
        "--lease-attempts", type=int, default=3, metavar="N",
        help="(--distribute) lease grants per cell before it runs "
        "locally instead (default: 3)",
    )
    figure.add_argument(
        "--local-grace", type=float, default=10.0, metavar="SECONDS",
        help="(--distribute) no worker contact for this long degrades "
        "the batch to local execution, one-way (default: 10)",
    )
    figure.add_argument(
        "--chaos", default=None, metavar="PLAN",
        help="deterministic chaos plan for the figure's journal "
        "(tests only), e.g. 'kill-server:append:3' tears the N-th "
        "append and SIGKILLs this process; requires --journal",
    )
    _add_common_machine_args(figure)
    _add_resilience_args(figure)
    _add_runstate_args(figure)
    _add_trace_arg(figure)

    tournament = sub.add_parser(
        "tournament",
        help="sweep the policy zoo across scenarios and rank a "
        "leaderboard (see docs/policies.md)",
    )
    tournament.add_argument(
        "--policies", default=None, metavar="SPECS",
        help="comma list of zoo policy specs NAME[:k=v,...] "
        "(default: the stock lineup; see 'repro policies')",
    )
    tournament.add_argument(
        "--scenarios", default=None, metavar="SPECS",
        help="comma list of scenario specs "
        "(default: fresh,fragmented:0.9,constrained:0.5)",
    )
    tournament.add_argument(
        "--workloads", default=None,
        help="comma list (default: bfs)",
    )
    tournament.add_argument(
        "--datasets", default=None,
        help="comma list (default: all Table 2 inputs)",
    )
    tournament.add_argument(
        "--json", action="store_true", help="emit JSON instead of a table"
    )
    tournament.add_argument(
        "--out",
        default=None,
        metavar="DIR",
        help="also save tournament.txt and .json under DIR "
        "(atomic write: never leaves torn files)",
    )
    tournament.add_argument(
        "--workers",
        type=int,
        default=int(os.environ.get("REPRO_WORKERS", "1")),
        metavar="N",
        help="process fan-out for the sweep: 1 = serial (default), "
        "N > 1 = work-stealing pool, 0 = one per CPU; leaderboard and "
        "journal bytes are identical to a serial run",
    )
    _add_common_machine_args(tournament)
    _add_resilience_args(tournament)
    _add_runstate_args(tournament)
    _add_trace_arg(tournament)

    trace = sub.add_parser(
        "trace", help="inspect or convert a recorded trace"
    )
    trace.add_argument(
        "action",
        choices=("summary", "export"),
        help="summary: per-cell event digest; export: convert to "
        "Chrome trace_event JSON (open in Perfetto / about:tracing)",
    )
    trace.add_argument("tracefile", metavar="TRACE", help="trace JSONL file")
    trace.add_argument(
        "--out",
        default=None,
        metavar="PATH",
        help="(export) output path (default: TRACE with .json suffix)",
    )

    sub.add_parser("datasets", help="list datasets (Table 2)")
    sub.add_parser("policies", help="list named policies")
    sub.add_parser("profiles", help="list machine profiles")

    runs = sub.add_parser(
        "runs", help="inspect, compact or merge run journals"
    )
    runs.add_argument(
        "action",
        choices=("list", "show", "gc", "merge"),
        help="list: one line per cell; show: full record(s) as JSON; "
        "gc: compact to completed cells; merge: union N journal "
        "shards by spec fingerprint (partition-tolerant; refuses "
        "split-brain conflicts with exit code 3)",
    )
    runs.add_argument(
        "shards", nargs="*", metavar="SHARD",
        help="(merge) journal shard files to union (coordinator + "
        "worker journals; missing files count as empty shards)",
    )
    runs.add_argument(
        "--journal", default=None, metavar="PATH",
        help="journal file (required for list/show/gc; for merge it "
        "is prepended to the shard list)",
    )
    runs.add_argument(
        "--spec",
        default=None,
        metavar="FINGERPRINT",
        help="(show) restrict to one cell's spec fingerprint",
    )
    runs.add_argument(
        "--out", default=None, metavar="PATH",
        help="(merge) write the merged journal here (atomic); "
        "default: print to stdout",
    )

    advise = sub.add_parser(
        "advise", help="run the page-size advisor on a dataset"
    )
    advise.add_argument("--dataset", default="kron-s")
    _add_common_machine_args(advise)

    serve = sub.add_parser(
        "serve",
        help="run the resilient sweep service (see docs/service.md)",
    )
    serve.add_argument(
        "--journal", required=True, metavar="PATH",
        help="run journal backing the result store (pidfile-locked for "
        "the server's lifetime)",
    )
    serve.add_argument(
        "--socket", default=None, metavar="PATH",
        help="listen on a UNIX-domain socket (preferred for local use)",
    )
    serve.add_argument("--host", default="127.0.0.1",
                       help="TCP listen host (when no --socket)")
    serve.add_argument("--port", type=int, default=7341,
                       help="TCP listen port (default: 7341)")
    serve.add_argument(
        "--workers", type=int, default=2, metavar="N",
        help="worker processes (clamped to CPUs; 1 starts on the "
        "ladder's serial rung; default: 2)",
    )
    serve.add_argument(
        "--queue-depth", type=int, default=8, metavar="N",
        help="admission bound on in-flight specs; beyond it "
        "submissions get 429 + Retry-After (default: 8)",
    )
    serve.add_argument(
        "--max-job-attempts", type=int, default=2, metavar="N",
        help="dispatches per job before a worker-crash loop is "
        "surfaced as a failure (default: 2)",
    )
    serve.add_argument(
        "--breaker-threshold", type=int, default=3, metavar="N",
        help="failures before a spec is quarantined (default: 3)",
    )
    serve.add_argument(
        "--breaker-cooldown", type=float, default=60.0, metavar="SECONDS",
        help="quarantine period before one probe is admitted "
        "(default: 60)",
    )
    serve.add_argument(
        "--heartbeat-interval", type=float, default=0.1, metavar="SECONDS",
        help="worker heartbeat period (default: 0.1)",
    )
    serve.add_argument(
        "--heartbeat-timeout", type=float, default=5.0, metavar="SECONDS",
        help="heartbeat silence treated as a wedged worker "
        "(default: 5)",
    )
    serve.add_argument(
        "--restart-backoff-base", type=float, default=0.1,
        metavar="SECONDS",
        help="base of the bounded exponential restart backoff "
        "(default: 0.1)",
    )
    serve.add_argument(
        "--restart-backoff-max", type=float, default=5.0,
        metavar="SECONDS",
        help="cap on the restart backoff (default: 5)",
    )
    serve.add_argument(
        "--degrade-restart-threshold", type=int, default=3, metavar="N",
        help="worker restarts within --degrade-window that step the "
        "degradation ladder (default: 3)",
    )
    serve.add_argument(
        "--degrade-window", type=float, default=30.0, metavar="SECONDS",
        help="sliding window for the restart rate (default: 30)",
    )
    serve.add_argument(
        "--pagerank-iterations", type=int, default=3, metavar="N",
        help="PageRank iteration cap, part of cell identity "
        "(default: 3)",
    )
    serve.add_argument(
        "--cell-cycles", type=int, default=None, metavar="CYCLES",
        help="watchdog: cap on simulated cycles per cell",
    )
    serve.add_argument(
        "--cell-deadline", type=float, default=None, metavar="SECONDS",
        help="watchdog: wall-clock deadline per cell",
    )
    serve.add_argument(
        "--chaos", default=None, metavar="PLAN",
        help="deterministic chaos plan (tests only): comma list of "
        "action:point:ordinal, e.g. 'kill-worker:cell:1,"
        "enospc:append:3'; see docs/service.md",
    )
    _add_common_machine_args(serve)
    serve.add_argument(
        "--retries", type=int, default=2, metavar="N",
        help="max retries per cell for injected faults (default: 2)",
    )
    serve.add_argument(
        "--cell-budget", type=int, default=None, metavar="ACCESSES",
        help="cap on simulated accesses per cell",
    )

    work = sub.add_parser(
        "work",
        help="run a remote sweep worker: pull leased cells from a "
        "'repro figure --distribute' coordinator (see docs/service.md)",
    )
    work.add_argument(
        "--connect", required=True, metavar="ADDR",
        help="coordinator address: socket path or host:port",
    )
    work.add_argument(
        "--journal", required=True, metavar="PATH",
        help="this worker's local journal shard (merged afterwards "
        "with 'repro runs merge')",
    )
    work.add_argument(
        "--worker-id", default=None, metavar="NAME",
        help="stable worker name for leases and events "
        "(default: w<pid>)",
    )
    work.add_argument(
        "--poll-interval", type=float, default=0.2, metavar="SECONDS",
        help="idle poll period when no cell is leasable (default: 0.2)",
    )
    work.add_argument(
        "--idle-exit", type=float, default=30.0, metavar="SECONDS",
        help="exit 0 after this long without coordinator contact "
        "(default: 30)",
    )
    work.add_argument(
        "--request-attempts", type=int, default=4, metavar="N",
        help="bounded retry attempts per coordinator request "
        "(default: 4)",
    )
    work.add_argument(
        "--chaos", default=None, metavar="PLAN",
        help="deterministic chaos plan (tests only): kill-worker:cell:N "
        "self-SIGKILLs mid-cell; drop/delay/sever net.* actions fault "
        "this worker's socket operations",
    )
    work.add_argument(
        "--net-delay", type=float, default=0.5, metavar="SECONDS",
        help="stall applied by delay:net.* chaos actions (default: 0.5)",
    )

    analyze = sub.add_parser(
        "analyze",
        help="run the repo's static analysis (REP001-REP013); "
        "arguments after -- pass through to python -m repro.analysis",
    )
    analyze.add_argument(
        "analyzer_args", nargs=argparse.REMAINDER, metavar="ARGS",
        help="arguments forwarded verbatim after a -- separator "
        "(e.g. repro analyze -- --list-rules, repro analyze -- "
        "--baseline .analysis-baseline.json --format json)",
    )

    chaos = sub.add_parser(
        "chaos",
        help="run the deterministic chaos scenarios against a real "
        "server (see docs/service.md)",
    )
    chaos.add_argument(
        "scenarios", nargs="*", metavar="SCENARIO",
        help="scenarios to run (default: all); see --list",
    )
    chaos.add_argument(
        "--list", action="store_true", help="list scenarios and exit"
    )
    chaos.add_argument(
        "--workdir", default=None, metavar="DIR",
        help="working directory for journals/sockets/logs "
        "(default: a fresh temporary directory, kept on failure)",
    )

    return parser


def _parse_policy(spec: str, dataset=None, config=None):
    from .experiments.parse import parse_policy

    return parse_policy(spec, dataset=dataset, config=config)


def _parse_scenario(spec: str):
    from .experiments.parse import parse_scenario

    return parse_scenario(spec)


def _cmd_run(args: argparse.Namespace) -> int:
    from .experiments.harness import CellFailure

    runner = _make_runner(args)
    policy = _parse_policy(
        args.policy, dataset=args.dataset, config=runner.config
    )
    scenario = _parse_scenario(args.scenario)
    try:
        result = runner.run_cell(args.workload, args.dataset, policy, scenario)
        _write_trace(args, runner)
    finally:
        _close_runner(runner)
    if isinstance(result, CellFailure):
        print(result.describe(), file=sys.stderr)
        return 1
    print(f"{args.workload} on {args.dataset} | policy={policy.name} "
          f"| scenario={scenario.name}")
    for key, value in result.summary().items():
        print(f"  {key:26s}: {value}")
    for name, fraction in result.huge_fraction_per_array.items():
        print(f"  huge[{name}]".ljust(28) + f": {fraction:.1%}")
    return 0


def _cmd_figure(args: argparse.Namespace) -> int:
    from .experiments.figures import FIGURES

    if args.figure_id == "all":
        # 'all' regenerates the paper figures; the zoo leaderboard is
        # its own sweep (also available as 'repro tournament').
        selected = [
            function
            for figure_id, function in FIGURES.items()
            if figure_id != "tournament"
        ]
    elif args.figure_id in FIGURES:
        selected = [FIGURES[args.figure_id]]
    else:
        raise ReproError(
            f"unknown figure {args.figure_id!r}; known: all, "
            + ", ".join(sorted(FIGURES))
        )
    if getattr(args, "policy", None) and args.figure_id != "tournament":
        raise ReproError(
            "figure --policy only applies to the 'tournament' figure; "
            "other figures pin their own policy axes"
        )
    runner = _make_runner(args)
    if getattr(args, "chaos", None):
        from .chaos.journal import ChaosJournal
        from .chaos.plan import ChaosPlan

        if not args.journal:
            raise ReproError("figure --chaos requires --journal PATH")
        old = runner.journal
        if old is not None:
            old.close()
        runner.journal = ChaosJournal(
            args.journal, ChaosPlan.parse(args.chaos), lock=True
        )
    coordinator = None
    if getattr(args, "distribute", None):
        from .dist import DistConfig, DistCoordinator, parse_connect

        socket_path, host, port = parse_connect(args.distribute)
        dist_config = DistConfig(
            socket_path=socket_path,
            host=host,
            port=port,
            lease_seconds=args.lease_seconds,
            max_lease_attempts=args.lease_attempts,
            local_grace_seconds=args.local_grace,
            faults_text=getattr(args, "faults", None),
            fault_seed=getattr(args, "fault_seed", 0),
        )
        coordinator = DistCoordinator(runner, dist_config)
        coordinator.start()
        runner.dist_executor = coordinator.execute_batch
    kwargs = {}
    if args.workloads:
        kwargs["workloads"] = tuple(args.workloads.split(","))
    if args.datasets:
        kwargs["datasets"] = tuple(args.datasets.split(","))
    if getattr(args, "policy", None):
        kwargs["policies"] = tuple(
            spec
            for chunk in args.policy
            for spec in chunk.split(",")
            if spec
        )
    try:
        for function in selected:
            result = function(runner, **kwargs)
            print(result.to_json() if args.json else result.render())
            if args.out:
                txt_path, json_path = result.save(args.out)
                print(f"saved {txt_path} and {json_path}", file=sys.stderr)
            if len(selected) > 1:
                print()
        _write_trace(args, runner)
    finally:
        if coordinator is not None:
            coordinator.drain()
            coordinator.stop()
        _close_runner(runner)
    if runner.failures:
        print(
            f"{len(runner.failures)} cell(s) failed (graceful degradation):",
            file=sys.stderr,
        )
        for failure in runner.failures:
            print(f"  {failure.describe()}", file=sys.stderr)
    return 0


def _cmd_tournament(args: argparse.Namespace) -> int:
    from .policy.tournament import run_tournament

    runner = _make_runner(args)
    kwargs = {}
    if args.policies:
        kwargs["policies"] = tuple(
            spec for spec in args.policies.split(",") if spec
        )
    if args.scenarios:
        kwargs["scenarios"] = tuple(
            spec for spec in args.scenarios.split(",") if spec
        )
    if args.workloads:
        kwargs["workloads"] = tuple(args.workloads.split(","))
    if args.datasets:
        kwargs["datasets"] = tuple(args.datasets.split(","))
    try:
        result = run_tournament(runner, **kwargs)
        print(result.to_json() if args.json else result.render())
        if args.out:
            txt_path, json_path = result.save(args.out)
            print(f"saved {txt_path} and {json_path}", file=sys.stderr)
        _write_trace(args, runner)
    finally:
        _close_runner(runner)
    if runner.failures:
        print(
            f"{len(runner.failures)} cell(s) failed (graceful degradation):",
            file=sys.stderr,
        )
        for failure in runner.failures:
            print(f"  {failure.describe()}", file=sys.stderr)
    return 0


def _cmd_datasets(_args: argparse.Namespace) -> int:
    from .graph.datasets import DATASETS, load_dataset
    from .graph.stats import degree_stats

    for name, spec in DATASETS.items():
        if name == "test-small":
            continue
        graph = load_dataset(name).graph
        stats = degree_stats(graph)
        print(
            f"{name:12s} {spec.paper_name:22s} "
            f"V={graph.num_vertices:>8,} E={graph.num_edges:>10,} "
            f"avg_deg={graph.average_degree:5.1f} "
            f"gini={stats.gini:.2f} "
            f"hot80%={stats.hot_set_fraction:6.1%} "
            f"skew={stats.skew_class:8s} {spec.description}"
        )
    return 0


def _cmd_policies(_args: argparse.Namespace) -> int:
    from .experiments.policies import POLICIES
    from .policy.registry import registered_policies

    for name, policy in POLICIES.items():
        thp = policy.make_thp()
        print(f"{name:16s} thp={thp.mode.value:8s} "
              f"order={policy.plan.order.value:14s} "
              f"reorder={policy.plan.reorder}")
    print("selective:<s>[:<reorder>]   madvise s% of the property array")
    print()
    print("policy zoo — spec NAME[:k=v,...] anywhere --policy is "
          "accepted (docs/policies.md):")
    for name, entry in registered_policies().items():
        tag = "  [dataset-aware]" if entry.dataset_aware else ""
        print(f"{name:16s} {entry.summary}{tag}")
    return 0


def _cmd_profiles(_args: argparse.Namespace) -> int:
    for name in sorted(PROFILES):
        cfg = get_profile(name)
        print(
            f"{name:10s} base={format_bytes(cfg.pages.base_page_size)} "
            f"huge={format_bytes(cfg.pages.huge_page_size)} "
            f"L1={cfg.tlb.l1_base.entries}+{cfg.tlb.l1_huge.entries} "
            f"STLB={cfg.tlb.l2.entries} "
            f"node={format_bytes(cfg.node_memory_bytes)}"
        )
    return 0


def _cmd_advise(args: argparse.Namespace) -> int:
    from .core.advisor import PageSizeAdvisor
    from .graph.datasets import load_dataset

    data = load_dataset(args.dataset)
    report = PageSizeAdvisor(
        data.graph, config=get_profile(args.profile)
    ).advise()
    print(f"advisor report for {data.name}:")
    print(f"  hot vertex fraction : {report.hot_vertex_fraction:.2%}")
    print(f"  access coverage     : {report.access_coverage:.2%}")
    print(f"  natural clustering  : {report.natural_clustering:.2%}")
    print(f"  reorder             : {report.plan.reorder}")
    print(f"  advise fraction s   : {report.advise_fraction:.2%}")
    print(f"  huge pages needed   : {report.huge_pages_needed}")
    print(f"  budget fraction     : {report.budget_fraction:.2%}")
    return 0


def _cmd_runs(args: argparse.Namespace) -> int:
    import json as json_module

    from .errors import JournalLockedError
    from .runstate.journal import RunJournal
    from .runstate.lock import PidLock

    if args.action == "merge":
        from .errors import MergeConflictError
        from .runstate.merge import (
            format_conflict_report,
            merge_journals,
            write_merged,
        )

        shards = list(args.shards)
        if args.journal:
            shards.insert(0, args.journal)
        if not shards:
            raise ReproError(
                "runs merge needs at least one journal shard "
                "(positional SHARD arguments and/or --journal)"
            )
        try:
            if args.out:
                report = write_merged(shards, args.out)
            else:
                report = merge_journals(shards)
                sys.stdout.write(report.text)
        except MergeConflictError as error:
            print(format_conflict_report(error), file=sys.stderr)
            return 3
        destination = args.out if args.out else "stdout"
        print(
            f"merged {len(shards)} shard(s) -> {destination}: "
            f"kept {report.kept} completed cell(s), "
            f"{report.duplicates} duplicate(s) deduplicated, "
            f"{report.dropped} non-final record(s) dropped",
            file=sys.stderr,
        )
        for shard in report.shards:
            if shard.torn:
                print(
                    f"  {shard.path}: {shard.torn} torn record(s) "
                    "skipped",
                    file=sys.stderr,
                )
        return 0
    if args.shards:
        raise ReproError(
            f"runs {args.action} takes no positional shard arguments "
            "(those are for 'runs merge')"
        )
    if not args.journal:
        raise ReproError(f"runs {args.action} requires --journal PATH")
    if args.action == "gc":
        # Hold the pidfile lock for the whole compaction, not just a
        # liveness check: a sweep or server starting between a check
        # and the atomic rewrite could append records the rewrite
        # would silently discard.
        lock = PidLock(args.journal)
        try:
            lock.acquire()
        except JournalLockedError as error:
            raise ReproError(
                f"refusing to gc {args.journal!r}: a running sweep or "
                f"server owns the journal ({error}); stop it first or "
                "wait for it to finish"
            ) from error
        try:
            journal = RunJournal(args.journal)
            kept, dropped = journal.gc()
        finally:
            lock.release()
        print(
            f"{args.journal}: kept {kept} completed cell(s), "
            f"dropped {dropped} superseded/failed/in-flight record(s)"
        )
        return 0
    journal = RunJournal(args.journal)
    if args.action == "list":
        counts = journal.counts()
        print(
            f"{args.journal}: {len(journal)} cell(s) "
            f"(done={counts['done']} failed={counts['failed']} "
            f"running={counts['running']}; "
            f"{journal.torn_records} torn record(s) skipped)"
        )
        for record in journal.records():
            cycles = (
                f"{record.kernel_cycles:,}"
                if record.kernel_cycles is not None
                else "-"
            )
            print(
                f"  {record.spec}  {record.status:8s} "
                f"attempts={record.attempts} kernel_cycles={cycles}  "
                f"{record.label}"
            )
        return 0
    if args.action == "show":
        records = list(journal.records())
        if args.spec is not None:
            records = [r for r in records if r.spec == args.spec]
            if not records:
                raise ReproError(
                    f"no record with spec {args.spec!r} in {args.journal}"
                )
        for record in records:
            print(json_module.dumps(record.to_dict(), indent=2))
        return 0
    raise ReproError(f"unknown runs action {args.action!r}")


def _cmd_work(args: argparse.Namespace) -> int:
    from .dist import WorkerConfig, work_loop

    plan = None
    if args.chaos:
        from .chaos.plan import ChaosPlan

        plan = ChaosPlan.parse(args.chaos)
    config = WorkerConfig(
        connect=args.connect,
        journal_path=args.journal,
        worker_id=args.worker_id,
        poll_interval=args.poll_interval,
        idle_exit_seconds=args.idle_exit,
        max_attempts=args.request_attempts,
        plan=plan,
        net_delay_seconds=args.net_delay,
    )
    return work_loop(config)


def _cmd_trace(args: argparse.Namespace) -> int:
    from .obs import (
        read_trace_jsonl,
        summarize,
        validate_trace_records,
        write_chrome_trace,
    )

    records = read_trace_jsonl(args.tracefile)
    problems = validate_trace_records(records)
    if problems:
        print(
            f"warning: {len(problems)} schema problem(s); first: "
            f"{problems[0]}",
            file=sys.stderr,
        )
    if args.action == "summary":
        print(summarize(records))
        return 0
    out = args.out
    if out is None:
        root, _, _ = args.tracefile.rpartition(".")
        out = (root or args.tracefile) + ".json"
    write_chrome_trace(out, records)
    print(
        f"wrote Chrome trace ({len(records)} event(s)) to {out}; open "
        "in Perfetto (ui.perfetto.dev) or chrome://tracing"
    )
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    from .serve import ServiceConfig
    from .serve.server import serve as run_server

    config = ServiceConfig(
        journal_path=args.journal,
        socket_path=args.socket,
        host=args.host,
        port=args.port,
        workers=args.workers,
        queue_depth=args.queue_depth,
        max_job_attempts=args.max_job_attempts,
        breaker_threshold=args.breaker_threshold,
        breaker_cooldown_seconds=args.breaker_cooldown,
        heartbeat_interval_seconds=args.heartbeat_interval,
        heartbeat_timeout_seconds=args.heartbeat_timeout,
        restart_backoff_base_seconds=args.restart_backoff_base,
        restart_backoff_max_seconds=args.restart_backoff_max,
        degrade_restart_threshold=args.degrade_restart_threshold,
        degrade_window_seconds=args.degrade_window,
        profile=args.profile,
        pagerank_iterations=args.pagerank_iterations,
        retries=args.retries,
        cell_budget=args.cell_budget,
        cell_cycles=args.cell_cycles,
        cell_deadline_seconds=args.cell_deadline,
        chaos=args.chaos,
    )
    return run_server(config)


def _cmd_chaos(args: argparse.Namespace) -> int:
    import tempfile

    from .chaos.harness import SCENARIOS, run_scenarios

    if args.list:
        for name, function in SCENARIOS.items():
            doc = (function.__doc__ or "").strip().splitlines()[0]
            print(f"{name:12s} {doc}")
        return 0
    names = list(args.scenarios) or list(SCENARIOS)
    workdir = args.workdir or tempfile.mkdtemp(prefix="repro-chaos-")
    print(f"chaos workdir: {workdir}", file=sys.stderr)

    def log(message: str) -> None:
        print(message, file=sys.stderr)

    reports = run_scenarios(names, workdir, log=log)
    for report in reports:
        detail = " ".join(
            f"{key}={value}"
            for key, value in sorted(report.items())
            if key not in ("scenario", "ok")
        )
        print(f"{report['scenario']:12s} OK  {detail}")
    print(f"{len(reports)}/{len(names)} scenario(s) passed")
    return 0


def _cmd_analyze(args: argparse.Namespace) -> int:
    from .analysis.__main__ import main as analysis_main

    forwarded = list(args.analyzer_args)
    if forwarded and forwarded[0] == "--":
        forwarded = forwarded[1:]
    return analysis_main(forwarded)


COMMANDS = {
    "run": _cmd_run,
    "analyze": _cmd_analyze,
    "serve": _cmd_serve,
    "chaos": _cmd_chaos,
    "figure": _cmd_figure,
    "tournament": _cmd_tournament,
    "trace": _cmd_trace,
    "datasets": _cmd_datasets,
    "policies": _cmd_policies,
    "profiles": _cmd_profiles,
    "advise": _cmd_advise,
    "runs": _cmd_runs,
    "work": _cmd_work,
}


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = _build_parser()
    args = parser.parse_args(argv)
    try:
        return COMMANDS[args.command](args)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    except BrokenPipeError:
        # Reader went away mid-print (e.g. ``repro trace summary | head``).
        # Detach stdout so the interpreter's shutdown flush cannot raise.
        devnull = os.open(os.devnull, os.O_WRONLY)
        os.dup2(devnull, sys.stdout.fileno())
        return 0
