"""The built-in THP modes, expressed as a policy hook.

:class:`BuiltinThpHook` reproduces the boolean-knob semantics of
:class:`~repro.mem.thp.ThpPolicy` (``mode`` / ``fault_alloc`` /
``fault_compact`` / ``fault_reclaim`` / ``khugepaged_*``) through the
:class:`~repro.policy.hooks.PagePolicy` interface, so ``never`` /
``always`` / ``madvise`` run on exactly the same code path as any zoo
policy.  The equivalence is pinned byte-for-byte (figure and journal
bytes) against the pre-hook tree by ``tests/test_policy_golden.py`` —
any change to the decision logic here is a behavioral change and must
re-justify those goldens.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Sequence

from .hooks import (
    DemoteCandidate,
    FaultContext,
    PageDecision,
    PromotionCandidate,
)

if TYPE_CHECKING:  # pragma: no cover - type-only import (avoids cycles)
    from ..mem.thp import ThpPolicy
    from .view import PolicyView


class BuiltinThpHook:
    """Hook adapter over a :class:`~repro.mem.thp.ThpPolicy`'s knobs."""

    def __init__(self, thp: "ThpPolicy") -> None:
        self._thp = thp
        self.name = f"builtin:{thp.mode.value}"

    def on_fault(
        self, ctx: FaultContext, view: "PolicyView"
    ) -> PageDecision:
        thp = self._thp
        huge = (
            thp.fault_alloc
            and ctx.chunk_full
            and thp.wants_huge(ctx.advised)
            and not ctx.partially_mapped
        )
        return PageDecision(
            huge=huge,
            allow_compaction=thp.fault_compact,
            allow_reclaim=thp.fault_reclaim,
        )

    def on_khugepaged_scan(
        self,
        candidates: Sequence[PromotionCandidate],
        view: "PolicyView",
    ) -> Sequence[PromotionCandidate]:
        thp = self._thp
        return tuple(
            candidate
            for candidate in candidates
            if thp.wants_huge(candidate.advised)
        )

    def on_demote_scan(
        self,
        candidates: Sequence[DemoteCandidate],
        view: "PolicyView",
    ) -> Sequence[DemoteCandidate]:
        return tuple(
            candidate
            for candidate in candidates
            if candidate.utilization < candidate.threshold
        )
