"""The policy zoo: named page-management strategies for the tournament.

Each entry is a builder that materializes an
:class:`~repro.experiments.policies.Policy` (THP configuration +
placement plan + optional run-time manager), registered with the
:mod:`~repro.policy.registry` under a stable name so ``--policy
NAME[:k=v,...]`` works anywhere a fixed policy name does.

The shipped zoo spans the paper's design space:

- ``never`` / ``greedy-always`` / ``madvise`` — the three Linux THP
  modes (aliases of the paper's ``base4k`` / ``thp`` /
  ``madv-property`` bars);
- ``khugepaged`` — fault-time allocation off, background promotion on
  (Linux's ``defrag=defer`` flavour);
- ``paper-selective`` — DBG + madvise on the leading ``s`` fraction of
  the property array (the paper's §5 optimization);
- ``advisor`` — the :class:`~repro.core.advisor.PageSizeAdvisor`'s
  graph-derived plan (dataset-aware: needs the input graph);
- ``hawkeye`` — run-time promotion by exact access counts;
- ``hawkeye-bits`` — run-time promotion by *sampled access bits*
  (HawkEye's practical signal: periodic page-table access-bit scans
  see touched-vs-untouched, not counts);
- ``ingens`` — run-time promotion by utilization threshold;
- ``autotuner`` — the online profile-then-promote runtime
  (:class:`~repro.core.autotuner.OnlineAdvisor`).

Parameters fold into the materialized policy's *name* (e.g.
``autotuner(c=90%)``), which flows into journal spec fingerprints — two
parameterizations of the same zoo entry are distinct cells.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional, Sequence

import numpy as np

from ..mem.heuristics import HotnessManager
from ..mem.vmm import Vma
from .hooks import (
    BASE_PAGES,
    DemoteCandidate,
    FaultContext,
    PageDecision,
    PromotionCandidate,
)
from .registry import register_policy

if TYPE_CHECKING:  # pragma: no cover - type-only import
    from .view import PolicyView


class AdvisorHook:
    """:class:`~repro.policy.hooks.PagePolicy` of the static advisor.

    The :class:`~repro.core.advisor.PageSizeAdvisor` front-loads its
    intelligence into the placement plan (which arrays/prefixes carry
    ``MADV_HUGEPAGE``), so its run-time hook is the kernel's advised
    semantics: back advised full chunks with huge pages at fault time,
    collapse advised candidates in khugepaged passes, split
    underutilized huge pages in demote scans.  Expressed as a
    first-class hook (rather than the ``madvise`` knob) so the advisor
    participates in the policy API like any zoo member — its decisions
    surface as ``policy.*`` trace events under ``--trace``.
    """

    name = "advisor"

    def on_fault(
        self, ctx: FaultContext, view: "PolicyView"
    ) -> PageDecision:
        return PageDecision(
            huge=ctx.chunk_full and ctx.advised and not ctx.partially_mapped
        )

    def on_khugepaged_scan(
        self,
        candidates: Sequence[PromotionCandidate],
        view: "PolicyView",
    ) -> Sequence[PromotionCandidate]:
        return tuple(c for c in candidates if c.advised)

    def on_demote_scan(
        self,
        candidates: Sequence[DemoteCandidate],
        view: "PolicyView",
    ) -> Sequence[DemoteCandidate]:
        return tuple(
            c for c in candidates if c.utilization < c.threshold
        )


class AutotunerHook:
    """:class:`~repro.policy.hooks.PagePolicy` of the online autotuner.

    The :class:`~repro.core.autotuner.OnlineAdvisor` makes every
    promotion decision itself at iteration boundaries (profile one
    iteration, promote the hot prefix), so its hook keeps the kernel
    passive: base pages at fault time, nothing volunteered to
    khugepaged, kernel-default splitting of underutilized huge pages.
    """

    name = "autotuner"

    def on_fault(
        self, ctx: FaultContext, view: "PolicyView"
    ) -> PageDecision:
        return BASE_PAGES

    def on_khugepaged_scan(
        self,
        candidates: Sequence[PromotionCandidate],
        view: "PolicyView",
    ) -> Sequence[PromotionCandidate]:
        return ()

    def on_demote_scan(
        self,
        candidates: Sequence[DemoteCandidate],
        view: "PolicyView",
    ) -> Sequence[DemoteCandidate]:
        return tuple(
            c for c in candidates if c.utilization < c.threshold
        )


class SampledHotnessManager(HotnessManager):
    """HawkEye-style promotion from *sampled access bits*.

    The exact-count :class:`~repro.mem.heuristics.HotnessManager` is a
    best-case oracle; real deployments scan page-table access bits
    periodically and only learn *which* pages were touched since the
    last scan, at a sampling granularity.  This manager quantizes the
    profiler's counts down to that signal: a chunk's hotness is the
    number of its sampled base pages with the access bit set (every
    ``sample_stride``-th page is scanned), not its access count.
    Deterministic by construction — the "sampling" is a fixed stride,
    never an RNG (rule REP013).
    """

    def __init__(
        self,
        sample_stride: int = 8,
        min_hot_pages: int = 1,
        promotions_per_pass: int = 8,
    ) -> None:
        super().__init__(
            min_accesses=1, promotions_per_pass=promotions_per_pass
        )
        if sample_stride < 1:
            raise ValueError(
                f"sample_stride must be >= 1, got {sample_stride}"
            )
        self.sample_stride = sample_stride
        self.min_hot_pages = min_hot_pages

    def _chunk_hot_bits(self, vma: Vma) -> np.ndarray:
        """Per-chunk count of sampled pages with their access bit set."""
        touched = self.profiler.page_counts(vma) > 0
        sampled = np.zeros_like(touched)
        sampled[:: self.sample_stride] = touched[:: self.sample_stride]
        frames_per_huge = self.config.pages.frames_per_huge
        nchunks = vma.nchunks
        padded = np.zeros(nchunks * frames_per_huge, dtype=np.int64)
        padded[: sampled.size] = sampled
        return padded.reshape(nchunks, frames_per_huge).sum(axis=1)

    def on_iteration(self) -> int:
        """Rank across all VMAs by sampled hot-bit count (ties broken
        by address order, like the kernel's scan)."""
        entries: list[tuple[int, Vma, int]] = []
        for vma in self.vmm.iter_vmas():
            bits = self._chunk_hot_bits(vma)
            for chunk in np.flatnonzero(bits >= self.min_hot_pages):
                chunk = int(chunk)
                if self._promotable(vma, chunk):
                    entries.append((int(bits[chunk]), vma, chunk))
        entries.sort(key=lambda item: -item[0])
        promoted = 0
        for _, vma, chunk in entries[: self.promotions_per_pass]:
            if not self.vmm.promote_chunk(vma, chunk):
                break
            promoted += 1
            self.total_promotions += 1
        return promoted


# ----------------------------------------------------------------------
# Zoo builders.  Each returns an experiments.Policy; dataset-aware
# builders accept (dataset, config) via the registry's materialization.
# ----------------------------------------------------------------------


def _never_builder():
    from ..experiments.policies import POLICIES

    return POLICIES["base4k"]


def _greedy_builder():
    from ..experiments.policies import POLICIES

    return POLICIES["thp"]


def _madvise_builder():
    from ..experiments.policies import POLICIES

    return POLICIES["madv-property"]


def _khugepaged_builder():
    from ..core.plan import PlacementPlan
    from ..experiments.policies import Policy
    from ..mem.thp import ThpMode, ThpPolicy

    return Policy(
        name="khugepaged",
        thp_factory=lambda: ThpPolicy(
            mode=ThpMode.ALWAYS, fault_alloc=False
        ),
        plan=PlacementPlan(label="khugepaged"),
    )


def _paper_selective_builder(s: float = 0.5, reorder: str = "dbg"):
    from ..experiments.policies import selective_policy

    return selective_policy(
        float(s), reorder="none" if reorder is None else str(reorder)
    )


def _advisor_builder(
    coverage: float = 0.8,
    *,
    dataset: Optional[str] = None,
    config=None,
):
    """The static advisor's plan for ``dataset`` (graph-derived)."""
    from ..core.advisor import PageSizeAdvisor
    from ..errors import ReproError
    from ..experiments.policies import Policy
    from ..graph.datasets import load_dataset
    from ..mem.thp import ThpMode, ThpPolicy

    if dataset is None:
        raise ReproError(
            "policy 'advisor' derives its plan from the input graph; "
            "select it where a dataset is known (repro run/figure/"
            "tournament), not as a dataset-independent policy"
        )
    graph = load_dataset(dataset).graph
    report = PageSizeAdvisor(
        graph, config=config, coverage_target=float(coverage)
    ).advise()
    return Policy(
        name=report.plan.label,
        thp_factory=lambda: ThpPolicy(
            mode=ThpMode.MADVISE, hooks=AdvisorHook()
        ),
        plan=report.plan,
    )


def _manager_thp():
    """THP configuration under a run-time manager: the kernel stays
    passive (no fault-time allocation, no khugepaged) and the manager
    owns promotion."""
    from ..mem.thp import ThpMode, ThpPolicy

    return ThpPolicy(
        mode=ThpMode.ALWAYS, fault_alloc=False, khugepaged_enabled=False
    )


def _hawkeye_builder(per_pass: int = 8):
    from ..core.plan import PlacementPlan
    from ..experiments.policies import Policy

    return Policy(
        name="hawkeye",
        thp_factory=_manager_thp,
        plan=PlacementPlan(label="hawkeye"),
        manager_factory=lambda: HotnessManager(
            promotions_per_pass=int(per_pass)
        ),
    )


def _hawkeye_bits_builder(stride: int = 8, per_pass: int = 8):
    from ..core.plan import PlacementPlan
    from ..experiments.policies import Policy

    stride = int(stride)
    return Policy(
        name=f"hawkeye-bits(k={stride})",
        thp_factory=_manager_thp,
        plan=PlacementPlan(label=f"hawkeye-bits(k={stride})"),
        manager_factory=lambda: SampledHotnessManager(
            sample_stride=stride, promotions_per_pass=int(per_pass)
        ),
    )


def _ingens_builder(threshold: float = 0.9, per_pass: int = 8):
    from ..core.plan import PlacementPlan
    from ..experiments.policies import Policy
    from ..mem.heuristics import UtilizationManager

    threshold = float(threshold)
    return Policy(
        name=f"ingens(u={threshold:.0%})",
        thp_factory=_manager_thp,
        plan=PlacementPlan(label=f"ingens(u={threshold:.0%})"),
        manager_factory=lambda: UtilizationManager(
            utilization_threshold=threshold,
            promotions_per_pass=int(per_pass),
        ),
    )


def _autotuner_builder(
    coverage: float = 0.85, max_chunks: Optional[int] = None
):
    from ..core.autotuner import OnlineAdvisor
    from ..core.plan import PlacementPlan
    from ..experiments.policies import Policy
    from ..mem.thp import ThpMode, ThpPolicy

    coverage = float(coverage)
    max_chunks = None if max_chunks is None else int(max_chunks)
    return Policy(
        name=f"autotuner(c={coverage:.0%})",
        thp_factory=lambda: ThpPolicy(
            mode=ThpMode.ALWAYS, fault_alloc=False,
            khugepaged_enabled=False, hooks=AutotunerHook(),
        ),
        plan=PlacementPlan(label=f"autotuner(c={coverage:.0%})"),
        manager_factory=lambda: OnlineAdvisor(
            coverage_target=coverage, max_chunks=max_chunks
        ),
    )


def _hugetlb_builder(fraction: float = 1.0, reorder: str = "dbg"):
    from ..experiments.policies import hugetlb_policy

    return hugetlb_policy(
        float(fraction), reorder="none" if reorder is None else str(reorder)
    )


# THP allocation-path variants (the ablation figures' configurations,
# promoted to first-class zoo entries): all run the property-first plan
# so the allocation-path difference is the only variable.


def _thp_direct_builder():
    from ..experiments.policies import POLICIES, Policy
    from ..mem.thp import ThpPolicy

    return Policy("thp-direct", ThpPolicy.always, POLICIES["thp-opt"].plan)


def _thp_khugepaged_builder():
    from ..experiments.policies import POLICIES, Policy
    from ..mem.thp import ThpMode, ThpPolicy

    return Policy(
        "thp-khugepaged",
        lambda: ThpPolicy(mode=ThpMode.ALWAYS, fault_alloc=False),
        POLICIES["thp-opt"].plan,
    )


def _thp_defer_builder():
    from ..experiments.policies import POLICIES, Policy
    from ..mem.thp import ThpMode, ThpPolicy

    return Policy(
        "thp-defer",
        lambda: ThpPolicy(
            mode=ThpMode.ALWAYS,
            fault_compact=False,
            fault_reclaim=False,
            khugepaged_enabled=False,
        ),
        POLICIES["thp-opt"].plan,
    )


def _thp_opt_defer_builder():
    from ..experiments.policies import POLICIES, Policy
    from ..mem.thp import ThpMode, ThpPolicy

    return Policy(
        "thp-opt-defer",
        lambda: ThpPolicy(
            mode=ThpMode.ALWAYS,
            fault_reclaim=False,
            khugepaged_compact=False,
        ),
        POLICIES["thp-opt"].plan,
    )


def register_zoo() -> None:
    """Register the shipped zoo (idempotent; called at registry import)."""
    register_policy(
        "never", _never_builder,
        summary="THP off: the paper's 4KB baseline (alias of base4k)",
    )
    register_policy(
        "greedy-always", _greedy_builder,
        summary="system-wide THP, natural order (alias of thp)",
    )
    register_policy(
        "madvise", _madvise_builder,
        summary="programmer-advised THP on the property array "
        "(alias of madv-property)",
    )
    register_policy(
        "khugepaged", _khugepaged_builder,
        summary="no fault-time allocation; background promotion only",
    )
    register_policy(
        "paper-selective", _paper_selective_builder,
        summary="DBG + madvise leading s of the property array "
        "(params: s, reorder)",
    )
    register_policy(
        "advisor", _advisor_builder,
        summary="graph-derived selective plan from PageSizeAdvisor "
        "(params: coverage; dataset-aware)",
        dataset_aware=True,
    )
    register_policy(
        "hawkeye", _hawkeye_builder,
        summary="run-time promotion by exact access counts "
        "(params: per_pass)",
    )
    register_policy(
        "hawkeye-bits", _hawkeye_bits_builder,
        summary="run-time promotion by sampled access bits "
        "(params: stride, per_pass)",
    )
    register_policy(
        "ingens", _ingens_builder,
        summary="run-time promotion by utilization threshold "
        "(params: threshold, per_pass)",
    )
    register_policy(
        "autotuner", _autotuner_builder,
        summary="online profile-then-promote runtime "
        "(params: coverage, max_chunks)",
    )
    register_policy(
        "hugetlb", _hugetlb_builder,
        summary="boot-time hugetlbfs reservation for the property "
        "array prefix (params: fraction, reorder)",
    )
    register_policy(
        "thp-direct", _thp_direct_builder,
        summary="fault-time THP with direct compaction, "
        "property-first order",
    )
    register_policy(
        "thp-khugepaged", _thp_khugepaged_builder,
        summary="khugepaged-only promotion, property-first order",
    )
    register_policy(
        "thp-defer", _thp_defer_builder,
        summary="no fault compaction, no daemon (pristine regions "
        "only), property-first order",
    )
    register_policy(
        "thp-opt-defer", _thp_opt_defer_builder,
        summary="deferred reclaim (no fault reclaim, no daemon "
        "compaction), property-first order",
    )


register_zoo()
