"""Read-only view of VMM / physical / ledger state for policy hooks.

Policy callbacks are sandboxed: they may *observe* the memory system but
never mutate it — all actions flow through the values they return
(:class:`~repro.policy.hooks.PageDecision`, candidate selections).  The
:class:`PolicyView` enforces that one-way contract structurally: it
exposes scalar snapshots and copies only, holds no setters, and rejects
attribute writes outright, so a buggy or adversarial policy cannot
perturb simulation state behind the decision points' back (the runtime
twin of lint rule REP013).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any

if TYPE_CHECKING:  # pragma: no cover - type-only import (avoids cycles)
    from ..mem.vmm import VirtualMemoryManager


class PolicyView:
    """What a policy hook may see of the machine.

    Every accessor returns a scalar or a fresh copy; nothing hands out a
    live simulator object.
    """

    def __init__(self, vmm: "VirtualMemoryManager") -> None:
        object.__setattr__(self, "_vmm", vmm)

    def __setattr__(self, name: str, value: Any) -> None:
        raise AttributeError(
            "PolicyView is read-only: policy hooks act through their "
            "return values, never by mutating simulator state"
        )

    def __delattr__(self, name: str) -> None:
        raise AttributeError("PolicyView is read-only")

    # -- physical memory ----------------------------------------------

    @property
    def free_frames(self) -> int:
        """Free base frames on the bound NUMA node."""
        return int(self._vmm.node.free_frame_count)

    @property
    def free_bytes(self) -> int:
        """Free bytes on the bound NUMA node."""
        return int(self._vmm.node.free_bytes)

    @property
    def pristine_regions(self) -> int:
        """Completely free huge-page-sized regions (allocatable without
        compaction)."""
        return int(self._vmm.node.pristine_region_count)

    @property
    def fragmentation_level(self) -> float:
        """The node's fragmentation metric (0 = contiguous free memory,
        1 = every free frame stranded in a broken region)."""
        return float(self._vmm.node.fragmentation_level)

    # -- address space -------------------------------------------------

    @property
    def mapped_bytes(self) -> int:
        """Sum of all live mapping lengths."""
        return int(self._vmm.total_mapped_bytes())

    @property
    def huge_bytes(self) -> int:
        """Bytes currently backed by huge pages across all mappings."""
        return int(self._vmm.total_huge_bytes())

    def vma_names(self) -> tuple[str, ...]:
        """Live mapping names, in creation order."""
        return tuple(vma.name for vma in self._vmm.iter_vmas())

    def huge_fraction(self, vma_name: str) -> float:
        """Fraction of one mapping's pages backed by huge pages.

        Raises:
            AddressError: if no VMA has that name.
        """
        return float(self._vmm.find_vma(vma_name).huge_backed_fraction)

    def resident_pages(self, vma_name: str) -> int:
        """Resident base pages of one mapping.

        Raises:
            AddressError: if no VMA has that name.
        """
        return int(self._vmm.find_vma(vma_name).resident_pages)

    # -- kernel ledger -------------------------------------------------

    def ledger_snapshot(self) -> dict[str, dict[str, int]]:
        """Copy of the kernel ledger's per-category counters."""
        return self._vmm.node.ledger.snapshot()
