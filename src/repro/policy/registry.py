"""Name-keyed policy registry behind ``--policy NAME[:k=v,...]``.

The registry maps stable *zoo names* to builders that materialize
:class:`~repro.experiments.policies.Policy` objects.  Specs have the
grammar::

    NAME                      # defaults
    NAME:k=v[,k=v...]         # explicit parameters

Values parse as int, then float, then the keywords ``true`` / ``false``
/ ``none``, else stay strings.  When explicit parameters are present
the materialized policy is *renamed* to the canonical spec
(``NAME:k=v,...`` with keys sorted), so two parameterizations of the
same entry always produce distinct journal spec fingerprints — even
for parameters the builder does not fold into its own label.  A bare
``NAME`` keeps the builder's native name, so default lookups stay
fingerprint-compatible with the historical fixed policies
(``never`` materializes as ``base4k``, etc.).

Some entries are *dataset-aware* (the static ``advisor`` derives its
plan from the input graph); :func:`get_policy` forwards ``dataset`` and
``config`` to those builders only.

This module sits *above* :mod:`repro.mem` (builders import the
experiment layer), so it is deliberately not re-exported from
``repro.policy``'s package root — import it directly or via
:mod:`repro.api`.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Callable, Optional

from ..errors import ReproError

if TYPE_CHECKING:  # pragma: no cover - type-only import
    from ..config import MachineConfig
    from ..experiments.policies import Policy


@dataclass(frozen=True)
class ZooEntry:
    """One registered policy family."""

    name: str
    builder: Callable[..., "Policy"]
    summary: str = ""
    dataset_aware: bool = False


_REGISTRY: dict[str, "ZooEntry"] = {}


def _ensure_zoo() -> None:
    """Load the shipped zoo (idempotent; registers on first import).

    Deferred rather than imported at module top so ``registry`` and
    ``zoo`` can import each other in either order.
    """
    from . import zoo  # noqa: F401  (import side effect: registration)


def register_policy(
    name: str,
    builder: Callable[..., "Policy"],
    *,
    summary: str = "",
    dataset_aware: bool = False,
    replace: bool = False,
) -> "ZooEntry":
    """Register ``builder`` under ``name`` for ``--policy`` lookup.

    Re-registering an identical (name, builder) pair is a no-op, so
    :func:`~repro.policy.zoo.register_zoo` is idempotent; replacing a
    different builder requires ``replace=True``.

    Raises:
        ReproError: on a malformed name or a conflicting registration.
    """
    if not name or any(ch in name for ch in ":,= \t\n"):
        raise ReproError(
            f"bad policy name {name!r}: names must be non-empty and "
            "contain no ':', ',', '=' or whitespace (reserved by the "
            "NAME:k=v,... spec grammar)"
        )
    existing = _REGISTRY.get(name)
    if existing is not None and not replace:
        if existing.builder is builder:
            return existing
        raise ReproError(
            f"policy {name!r} is already registered; pass replace=True "
            "to override it"
        )
    entry = ZooEntry(
        name=name,
        builder=builder,
        summary=summary,
        dataset_aware=dataset_aware,
    )
    _REGISTRY[name] = entry
    return entry


def registered_policies() -> dict[str, "ZooEntry"]:
    """Snapshot of the registry, sorted by name."""
    _ensure_zoo()
    return {name: _REGISTRY[name] for name in sorted(_REGISTRY)}


def _parse_value(raw: str) -> Any:
    try:
        return int(raw)
    except ValueError:
        pass
    try:
        return float(raw)
    except ValueError:
        pass
    lowered = raw.lower()
    if lowered == "true":
        return True
    if lowered == "false":
        return False
    if lowered == "none":
        return None
    return raw


def parse_policy_spec(spec: str) -> tuple[str, dict[str, Any]]:
    """Split ``NAME[:k=v,...]`` into the name and its parameter dict.

    Raises:
        ReproError: on malformed parameter syntax.
    """
    name, sep, rest = spec.partition(":")
    if not name:
        raise ReproError(
            f"bad policy spec {spec!r}: expected NAME[:k=v,...]"
        )
    if not sep:
        return name, {}
    params: dict[str, Any] = {}
    for item in rest.split(","):
        key, eq, raw = item.partition("=")
        key = key.strip()
        if not eq or not key or not key.isidentifier():
            raise ReproError(
                f"bad policy spec {spec!r}: expected NAME:k=v[,k=v...]"
            )
        if key in params:
            raise ReproError(
                f"bad policy spec {spec!r}: duplicate parameter {key!r}"
            )
        params[key] = _parse_value(raw.strip())
    return name, params


def canonical_spec(name: str, params: dict[str, Any]) -> str:
    """The normalized spec string: keys sorted, values as parsed."""
    if not params:
        return name
    body = ",".join(f"{key}={params[key]}" for key in sorted(params))
    return f"{name}:{body}"


def get_policy(
    spec: str,
    *,
    dataset: Optional[str] = None,
    config: Optional["MachineConfig"] = None,
) -> "Policy":
    """Materialize the policy named by ``spec``.

    Args:
        spec: ``NAME[:k=v,...]`` against the registry.
        dataset: dataset name forwarded to dataset-aware builders (the
            static ``advisor`` needs the graph it is advising on).
        config: machine configuration forwarded to dataset-aware
            builders.

    Raises:
        ReproError: unknown name, malformed spec, or parameters the
            builder rejects.
    """
    name, params = parse_policy_spec(spec)
    _ensure_zoo()
    entry = _REGISTRY.get(name)
    if entry is None:
        raise ReproError(
            f"unknown zoo policy {name!r}; registered: "
            + ", ".join(sorted(_REGISTRY))
        )
    kwargs: dict[str, Any] = dict(params)
    if entry.dataset_aware:
        kwargs["dataset"] = dataset
        kwargs["config"] = config
    try:
        policy = entry.builder(**kwargs)
    except TypeError as exc:
        raise ReproError(
            f"bad parameters for policy {name!r}: {exc}"
        ) from exc
    if params:
        # Fold explicit parameters into the policy identity so every
        # parameterization fingerprints distinctly in the journal.
        policy = dataclasses.replace(
            policy, name=canonical_spec(name, params)
        )
    return policy
