"""repro.policy — the pluggable page-size policy API (docs/policies.md).

This package turns the simulator's hardwired THP decision points into a
policy-research platform:

- :mod:`repro.policy.hooks` — the stable :class:`PagePolicy` callback
  interface and its frozen context/decision types;
- :mod:`repro.policy.view` — the read-only :class:`PolicyView` hooks
  observe the machine through;
- :mod:`repro.policy.builtin` — the built-in ``never`` / ``always`` /
  ``madvise`` modes expressed as a hook (pinned byte-identical to the
  historical hardwired paths);
- :mod:`repro.policy.registry` — the name-keyed zoo registry behind
  ``--policy NAME[:k=v,...]``;
- :mod:`repro.policy.zoo` — the shipped policy zoo;
- :mod:`repro.policy.tournament` — the leaderboard harness behind
  ``repro tournament``.

Only the hook-interface layer is re-exported here; the registry, zoo
and tournament layers sit *above* the memory subsystem (they build
:class:`~repro.experiments.policies.Policy` objects), so they are
imported as submodules — e.g. ``from repro.policy.registry import
get_policy`` — or through :mod:`repro.api`, keeping this package
importable from inside :mod:`repro.mem` without a cycle.
"""

from .builtin import BuiltinThpHook
from .hooks import (
    BASE_PAGES,
    BasePagePolicy,
    DemoteCandidate,
    FaultContext,
    PageDecision,
    PagePolicy,
    PromotionCandidate,
)
from .view import PolicyView

__all__ = [
    "BASE_PAGES",
    "BasePagePolicy",
    "BuiltinThpHook",
    "DemoteCandidate",
    "FaultContext",
    "PageDecision",
    "PagePolicy",
    "PolicyView",
    "PromotionCandidate",
]
