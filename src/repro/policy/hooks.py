"""The policy-hook interface: userspace-guided page-size management.

The paper's conclusion calls for "automatically identifying and
exploiting the asymmetric value of huge page allocations"; in the same
spirit as eBPF-mm's userspace memory-management hooks, this module
exposes the simulator's three THP decision points behind a stable,
deterministic callback interface:

- :meth:`PagePolicy.on_fault` — first-touch of an eligible chunk:
  return a :class:`PageDecision` saying whether to try a huge-page
  allocation and how hard (direct compaction / reclaim in the fault
  path);
- :meth:`PagePolicy.on_khugepaged_scan` — the background daemon's scan:
  given every collapse-eligible chunk (:class:`PromotionCandidate`),
  return the ones to promote, in order;
- :meth:`PagePolicy.on_demote_scan` — the bloat-control scan: given the
  huge-mapped chunks and their observed utilization
  (:class:`DemoteCandidate`), return the ones to split.

Determinism contract (docs/policies.md, lint rule REP013): callbacks
receive *values* (frozen contexts plus a read-only
:class:`~repro.policy.view.PolicyView`) and must derive their decision
from those alone — no wall clocks, no ambient RNG, no writes through
the view, no hidden I/O.  A policy violating the contract breaks the
simulator's bit-for-bit reproducibility invariants (identical journal
bytes serial vs parallel, resumable sweeps), which is why the contract
is machine-checked.

The built-in ``never`` / ``always`` / ``madvise`` modes are themselves
expressed as a hook (:class:`~repro.policy.builtin.BuiltinThpHook`), so
the hook path is the *only* path — pinned byte-identical to the
pre-hook tree by ``tests/test_policy_golden.py``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Protocol, Sequence, runtime_checkable

if TYPE_CHECKING:  # pragma: no cover - type-only import (avoids cycles)
    from .view import PolicyView


@dataclass(frozen=True)
class PageDecision:
    """Outcome of one fault-time decision.

    Attributes:
        huge: attempt to back the faulting chunk with a huge page.
        allow_compaction: permit direct compaction in the fault path
            (``defrag = always`` semantics) when assembling the region.
        allow_reclaim: permit dropping reclaimable page-cache frames in
            the fault path.
    """

    huge: bool
    allow_compaction: bool = True
    allow_reclaim: bool = True


BASE_PAGES = PageDecision(huge=False)
"""The decision that faults the chunk in as base pages."""


@dataclass(frozen=True)
class FaultContext:
    """What the fault handler knows when a chunk is first touched.

    Attributes:
        vma_name: name of the mapping ("property_array", ...).
        chunk: huge-page-sized chunk index within the mapping.
        advised: the chunk's ``MADV_HUGEPAGE`` flag.
        chunk_full: the chunk spans a complete huge page worth of
            base pages (partial tail chunks are never huge-eligible).
        partially_mapped: some of the chunk's pages are already
            resident, so a huge mapping would require a collapse, which
            the fault path never performs.
    """

    vma_name: str
    chunk: int
    advised: bool
    chunk_full: bool
    partially_mapped: bool


@dataclass(frozen=True)
class PromotionCandidate:
    """One collapse-eligible chunk offered to the khugepaged scan.

    Candidates are base-mapped, fully resident, full-size chunks, in
    address order (VMA creation order, then chunk index) — exactly the
    kernel daemon's scan order.

    Attributes:
        vma_index: position of the owning VMA in the scan (stable for
            the duration of one scan; used by the VMM to act on the
            selection).
        vma_name: name of the owning mapping.
        chunk: chunk index within the mapping.
        advised: the chunk's ``MADV_HUGEPAGE`` flag.
        raw_index: position in the raw (vma, chunk) walk, counting
            ineligible chunks too — preserves the legacy scan-cap
            semantics bit-for-bit.
    """

    vma_index: int
    vma_name: str
    chunk: int
    advised: bool
    raw_index: int = 0


@dataclass(frozen=True)
class DemoteCandidate:
    """One huge-mapped chunk offered to the demotion (bloat) scan.

    Attributes:
        vma_name: name of the owning mapping.
        chunk: chunk index within the mapping.
        utilization: fraction of the chunk's base pages the workload
            actually uses (the caller's observed signal).
        threshold: the caller's utilization threshold (the legacy
            ``demote_underutilized`` cutoff, provided so threshold
            policies need no out-of-band state).
    """

    vma_name: str
    chunk: int
    utilization: float
    threshold: float


@runtime_checkable
class PagePolicy(Protocol):
    """The stable hook interface for page-size management policies.

    Implementations must be deterministic and side-effect-free (see the
    module docstring); ``name`` identifies the policy in traces.
    """

    name: str

    def on_fault(
        self, ctx: FaultContext, view: "PolicyView"
    ) -> PageDecision:
        """Decide how to back a first-touched chunk."""
        ...  # pragma: no cover - protocol

    def on_khugepaged_scan(
        self,
        candidates: Sequence[PromotionCandidate],
        view: "PolicyView",
    ) -> Sequence[PromotionCandidate]:
        """Pick the candidates to collapse, in promotion order."""
        ...  # pragma: no cover - protocol

    def on_demote_scan(
        self,
        candidates: Sequence[DemoteCandidate],
        view: "PolicyView",
    ) -> Sequence[DemoteCandidate]:
        """Pick the huge chunks to split back to base pages."""
        ...  # pragma: no cover - protocol


class BasePagePolicy:
    """Convenience base: a do-nothing policy to subclass.

    Defaults: base pages at fault time, no promotions, no demotions —
    override only the decision points the policy cares about.
    """

    name = "noop"

    def on_fault(
        self, ctx: FaultContext, view: "PolicyView"
    ) -> PageDecision:
        return BASE_PAGES

    def on_khugepaged_scan(
        self,
        candidates: Sequence[PromotionCandidate],
        view: "PolicyView",
    ) -> Sequence[PromotionCandidate]:
        return ()

    def on_demote_scan(
        self,
        candidates: Sequence[DemoteCandidate],
        view: "PolicyView",
    ) -> Sequence[DemoteCandidate]:
        return ()
