"""The policy tournament: every zoo policy, every scenario, ranked.

:func:`run_tournament` sweeps a set of zoo policies (spec strings
resolved through :mod:`repro.policy.registry`) across scenario axes —
pristine, fragmented, memory-constrained machines — on the runner's
datasets, normalizes each cell against the 4KB baseline in the *same*
scenario (the paper's convention), and emits a leaderboard
:class:`~repro.experiments.figures.FigureResult`: one row per policy,
one speedup-geomean column per scenario, ranked by overall geomean.

The sweep reuses the experiment harness unchanged — cells are batched
through :meth:`~repro.experiments.harness.ExperimentRunner.run_cells`,
so journaling, resume, dedupe, ``--workers`` fan-out and distributed
execution all apply, and the journal (hence the leaderboard) is
byte-identical serial vs parallel.  Policy parameters fold into cell
fingerprints via the registry's canonical naming, so two
parameterizations of one entry are distinct journal cells.

Ranking is deterministic: overall geomean descending, ties broken by
policy spec.  Cells that fail degrade per the
:class:`~repro.experiments.harness.CellFailure` absorbing protocol —
:func:`~repro.experiments.reporting.geomean` skips them, and a policy
whose every cell failed scores 0.0 and sinks to the bottom.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional, Sequence, Union

from ..errors import ReproError
from .registry import get_policy

if TYPE_CHECKING:  # pragma: no cover - type-only imports
    from ..experiments.figures import FigureResult
    from ..experiments.harness import ExperimentRunner
    from ..experiments.scenarios import Scenario

DEFAULT_POLICIES = (
    "greedy-always",
    "madvise",
    "khugepaged",
    "paper-selective",
    "hawkeye",
    "hawkeye-bits",
    "ingens",
    "autotuner",
)
"""The default bracket: the dataset-independent zoo (add ``advisor``
explicitly — it needs a graph per dataset and is slower to
materialize)."""

DEFAULT_SCENARIOS = ("fresh", "fragmented:0.8", "constrained:0.5")
"""The default scenario axes: pristine boot, fragmented memory,
constrained memory.  80% fragmentation is the highest default level
every stock dataset can set up (wiki-s's page-cache footprint leaves
too few pristine regions for 90%; pass ``--scenarios fragmented:0.9``
explicitly on the datasets that support it)."""

BASELINE_SPEC = "never"
"""Every scenario's normalization baseline (the paper's 4KB bars)."""


def run_tournament(
    runner: "ExperimentRunner",
    policies: Sequence[str] = DEFAULT_POLICIES,
    scenarios: Sequence[Union[str, "Scenario"]] = DEFAULT_SCENARIOS,
    workloads: Sequence[str] = ("bfs",),
    datasets: Optional[Sequence[str]] = None,
) -> "FigureResult":
    """Run the tournament and return the ranked leaderboard.

    Args:
        runner: the experiment harness to run cells on (its journal,
            workers and dist settings are reused unchanged).
        policies: zoo policy specs (``NAME[:k=v,...]``) to rank.
        scenarios: scenario specs (strings through
            :func:`~repro.experiments.parse.parse_scenario`) or
            :class:`~repro.experiments.scenarios.Scenario` objects.
        workloads: workload names each policy runs under.
        datasets: dataset names; defaults to ``runner.datasets``.

    Raises:
        ReproError: unknown policy/scenario specs, or colliding
            scenario display names.
    """
    from ..experiments.figures import FigureResult
    from ..experiments.parse import parse_scenario
    from ..experiments.reporting import geomean

    if not policies:
        raise ReproError("tournament needs at least one policy spec")
    if len(set(policies)) != len(policies):
        raise ReproError(f"duplicate policy specs: {list(policies)}")
    resolved_scenarios = [
        parse_scenario(spec) if isinstance(spec, str) else spec
        for spec in scenarios
    ]
    scenario_names = [s.name for s in resolved_scenarios]
    if len(set(scenario_names)) != len(scenario_names):
        raise ReproError(
            f"scenario display names collide: {scenario_names}"
        )
    dataset_names = tuple(
        runner.datasets if datasets is None else datasets
    )

    # Materialize each spec once per dataset (the advisor's plan is
    # graph-derived, so dataset-aware entries differ across datasets).
    baseline = {
        dataset: get_policy(
            BASELINE_SPEC, dataset=dataset, config=runner.config
        )
        for dataset in dataset_names
    }
    contenders = {
        spec: {
            dataset: get_policy(
                spec, dataset=dataset, config=runner.config
            )
            for dataset in dataset_names
        }
        for spec in policies
    }

    cells = []
    for scenario in resolved_scenarios:
        for workload in workloads:
            for dataset in dataset_names:
                cells.append(
                    (workload, dataset, baseline[dataset], scenario)
                )
                for spec in policies:
                    cells.append(
                        (
                            workload,
                            dataset,
                            contenders[spec][dataset],
                            scenario,
                        )
                    )
    runner.run_cells(cells)

    standings = []
    for spec in policies:
        per_scenario = {}
        all_speedups = []
        for scenario in resolved_scenarios:
            speedups = []
            for workload in workloads:
                for dataset in dataset_names:
                    base = runner.run_cell(
                        workload, dataset, baseline[dataset], scenario
                    )
                    run = runner.run_cell(
                        workload,
                        dataset,
                        contenders[spec][dataset],
                        scenario,
                    )
                    speedups.append(run.speedup_over(base))
            per_scenario[scenario.name] = geomean(speedups)
            all_speedups.extend(speedups)
        standings.append((geomean(all_speedups), spec, per_scenario))
    standings.sort(key=lambda item: (-item[0], item[1]))

    result = FigureResult(
        "tournament",
        "Policy tournament: geomean speedup over the 4KB baseline "
        "per scenario",
        notes=(
            f"{len(policies)} policies x {len(resolved_scenarios)} "
            f"scenarios x {len(workloads)} workload(s) x "
            f"{len(dataset_names)} dataset(s); baseline "
            f"{BASELINE_SPEC!r} rerun per scenario; ranked by overall "
            "geomean, ties by spec"
        ),
    )
    for rank, (overall, spec, per_scenario) in enumerate(standings, 1):
        row = {"rank": rank, "policy": spec}
        for name in scenario_names:
            row[name] = per_scenario[name]
        row["overall"] = overall
        result.rows.append(row)
    return result
