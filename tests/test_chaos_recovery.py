"""Crash-point recovery: SIGKILL anywhere, resume, identical bytes.

The satellite invariant from docs/service.md: for every crash point —
mid-cell or mid-journal-append (torn record) — a resumed run completes
the figure and its saved JSON is **byte-identical** to an uninterrupted
run.  The crash is injected with :mod:`repro.chaos.crash`, which
SIGKILLs the process (no cleanup, no atexit) at a deterministic
ordinal, leaving a half-written record behind for the append points.

Also home to the :class:`repro.chaos.plan.ChaosPlan` grammar tests.
"""

from __future__ import annotations

import os
import signal
import subprocess
import sys

import pytest

from repro.chaos.plan import ChaosPlan
from repro.cli import main as cli_main
from repro.errors import ConfigError
from repro.runstate.journal import scan_records


class TestChaosPlan:
    def test_parse_round_trip(self):
        plan = ChaosPlan.parse("kill-worker:cell:1,enospc:append:3")
        assert plan.kill_worker_at(1)
        assert not plan.kill_worker_at(2)
        assert plan.enospc_at_append(3)
        assert plan.enospc_at_append(5)  # threshold, not exact
        assert not plan.enospc_at_append(2)
        assert not plan.kill_server_at_append(3)

    def test_kill_server_is_exact(self):
        plan = ChaosPlan.parse("kill-server:append:4")
        assert plan.kill_server_at_append(4)
        assert not plan.kill_server_at_append(5)

    @pytest.mark.parametrize(
        "text",
        [
            "",
            "kill-worker",
            "kill-worker:cell",
            "kill-worker:cell:0",
            "kill-worker:cell:x",
            "kill-worker:append:1",  # wrong point for the action
            "enospc:cell:1",
            "no-such-action:cell:1",
        ],
    )
    def test_rejects_bad_grammar(self, text):
        with pytest.raises(ConfigError):
            ChaosPlan.parse(text)

    def test_tolerates_trailing_commas(self):
        plan = ChaosPlan.parse("kill-worker:cell:1,")
        assert plan.kill_worker_at(1)


FIGURE_ARGS = [
    "figure", "fig01",
    "--datasets", "test-small",
    "--workloads", "bfs,pagerank",
    "--profile", "tiny",
    "--json",
]


def _figure_args(journal: str, out: str, resume: bool = False) -> list[str]:
    args = FIGURE_ARGS + ["--journal", journal, "--out", out]
    if resume:
        args.append("--resume")
    return args


@pytest.fixture(scope="module")
def clean_figure(tmp_path_factory):
    """fig01 bytes from one uninterrupted run — the reference output."""
    base = tmp_path_factory.mktemp("clean")
    journal = str(base / "run.jsonl")
    out = str(base / "out")
    assert cli_main(_figure_args(journal, out)) == 0
    with open(os.path.join(out, "fig01.json"), "rb") as handle:
        return handle.read()


@pytest.mark.slow
class TestCrashRecovery:
    """SIGKILL at each crash point, restart with --resume, same bytes.

    fig01 over (bfs, pagerank) × test-small sweeps 8 cells (the
    figure's own policy × scenario grid), each journaling a begin and a
    done append.  The points below cover: the first cell mid-execution,
    a later cell mid-execution, a torn *begin* append, and two torn
    *done* appends at different depths.
    """

    @pytest.mark.parametrize(
        "crash_at",
        ["cell:1", "cell:2", "append:1", "append:2", "append:4"],
    )
    def test_sigkill_then_resume_is_byte_identical(
        self, crash_at, clean_figure, tmp_path
    ):
        journal = str(tmp_path / "run.jsonl")
        out = str(tmp_path / "out")
        env = dict(os.environ)
        src_root = os.path.dirname(os.path.dirname(os.path.dirname(
            os.path.abspath(__import__("repro").__file__)
        )))
        env["PYTHONPATH"] = os.pathsep.join(
            [src_root, env.get("PYTHONPATH", "")]
        ).rstrip(os.pathsep)
        proc = subprocess.run(
            [sys.executable, "-m", "repro.chaos.crash",
             "--crash-at", crash_at, "--"]
            + _figure_args(journal, out),
            env=env, capture_output=True, timeout=300,
        )
        assert proc.returncode == -signal.SIGKILL, (
            f"crash bomb at {crash_at} never fired: "
            f"exit {proc.returncode}, stderr "
            f"{proc.stderr.decode(errors='replace')[-500:]}"
        )
        # The interrupted run must not have produced the figure file —
        # output writes are atomic and happen after the sweep.
        assert not os.path.exists(os.path.join(out, "fig01.json"))

        assert cli_main(_figure_args(journal, out, resume=True)) == 0
        with open(os.path.join(out, "fig01.json"), "rb") as handle:
            resumed = handle.read()
        assert resumed == clean_figure, (
            f"resume after {crash_at} changed the figure bytes"
        )

    def test_torn_append_leaves_recoverable_journal(
        self, clean_figure, tmp_path
    ):
        """A SIGKILL mid-append leaves a torn tail; the journal must
        treat it as never written and re-run only that cell."""
        journal = str(tmp_path / "run.jsonl")
        out = str(tmp_path / "out")
        env = dict(os.environ)
        src_root = os.path.dirname(os.path.dirname(os.path.dirname(
            os.path.abspath(__import__("repro").__file__)
        )))
        env["PYTHONPATH"] = os.pathsep.join(
            [src_root, env.get("PYTHONPATH", "")]
        ).rstrip(os.pathsep)
        proc = subprocess.run(
            [sys.executable, "-m", "repro.chaos.crash",
             "--crash-at", "append:4", "--"]
            + _figure_args(journal, out),
            env=env, capture_output=True, timeout=300,
        )
        assert proc.returncode == -signal.SIGKILL
        with open(journal, "rb") as handle:
            torn = handle.read()
        assert not torn.endswith(b"\n"), "append:4 should leave a torn tail"
        valid_before = list(scan_records(journal))
        assert len(valid_before) == 3  # begin+done cell 1, begin cell 2

        assert cli_main(_figure_args(journal, out, resume=True)) == 0
        # Exactly one spec — the one whose `done` append tore — gets a
        # second `running` record on resume; completed cells are never
        # re-executed.
        running_counts: dict[str, int] = {}
        for record in scan_records(journal):
            if record.status == "running":
                running_counts[record.spec] = (
                    running_counts.get(record.spec, 0) + 1
                )
        assert sorted(running_counts.values(), reverse=True)[0] == 2
        assert list(running_counts.values()).count(2) == 1
        assert all(count in (1, 2) for count in running_counts.values())
