"""Golden equivalence tests for the policy-hook API refactor.

The built-in ``never`` / ``always`` / ``madvise`` policies are routed
through the :mod:`repro.policy` hook interface, and the contract is that
this changes *nothing*: figure bytes and journal bytes must be identical
to what the pre-refactor tree (hardwired ``ThpPolicy`` booleans inside
the VMM) produced.  The golden files under ``tests/golden/`` were
captured from that pre-refactor tree; these tests re-run the same sweep
— serial and with a 4-worker pool — and byte-compare.

Re-capture (only meaningful when the built-in decision logic is
*intended* to change) with::

    REPRO_REFRESH_GOLDEN=1 python -m pytest tests/test_policy_golden.py
"""

from __future__ import annotations

import os
import pathlib

import pytest

from repro.config import scaled
from repro.experiments.figures import fig01_thp_speedup
from repro.experiments.harness import ExperimentRunner
from repro.experiments.policies import POLICIES
from repro.experiments.runconfig import RunConfig
from repro.experiments.scenarios import constrained, fresh

pytestmark = pytest.mark.slow  # SCALED profile (see conftest)

GOLDEN = pathlib.Path(__file__).parent / "golden"
FIG_TXT = GOLDEN / "policyapi_fig01.txt"
FIG_JSON = GOLDEN / "policyapi_fig01.json"
JOURNAL = GOLDEN / "policyapi_journal.jsonl"

WORKLOAD = "bfs"
DATASET = "kron-s"


def _golden_sweep(tmp_path, workers: int):
    """The pinned sweep: fig01 (never/always) plus two madvise cells,
    journaled.  Returns (figure text, figure json, journal bytes)."""
    journal_path = str(tmp_path / f"golden-{workers}.jsonl")
    runner = ExperimentRunner(
        config=scaled(),
        run_config=RunConfig(workers=workers, journal=journal_path),
        datasets=(DATASET,),
        pagerank_iterations=1,
    )
    try:
        figure = fig01_thp_speedup(runner, workloads=(WORKLOAD,))
        # fig01 exercises ThpPolicy.never and .always; the madv-property
        # cells cover the MADVISE mode through the same fault/khugepaged
        # decision points.
        runner.run_cells(
            [
                (WORKLOAD, DATASET, POLICIES["madv-property"], fresh()),
                (WORKLOAD, DATASET, POLICIES["madv-property"], constrained(0.5)),
            ]
        )
    finally:
        runner.run_config.journal.close()
    journal_bytes = pathlib.Path(journal_path).read_bytes()
    assert not runner.failures, runner.failures
    return figure.render(), figure.to_json(), journal_bytes


def test_refresh_golden(tmp_path):
    """Re-capture the golden files (opt-in via REPRO_REFRESH_GOLDEN)."""
    if not os.environ.get("REPRO_REFRESH_GOLDEN"):
        pytest.skip("set REPRO_REFRESH_GOLDEN=1 to re-capture goldens")
    txt, js, journal = _golden_sweep(tmp_path, workers=1)
    FIG_TXT.write_text(txt)
    FIG_JSON.write_text(js)
    JOURNAL.write_bytes(journal)


@pytest.mark.parametrize("workers", [1, 4])
def test_builtin_policies_byte_identical_to_seed(tmp_path, workers):
    """never/always/madvise via the hook path == pre-refactor bytes,
    serial and parallel."""
    txt, js, journal = _golden_sweep(tmp_path, workers)
    assert txt == FIG_TXT.read_text()
    assert js == FIG_JSON.read_text()
    assert journal == JOURNAL.read_bytes()
