"""Edge cases in the swap path (severe oversubscription)."""

import pytest

from repro.errors import ExperimentError, OutOfMemoryError
from repro.mem.memhog import Memhog
from repro.mem.swap import SwapDevice
from repro.mem.thp import ThpPolicy
from repro.mem.vmm import VirtualMemoryManager


class TestPartialEviction:
    def test_swap_out_returns_partial_when_fifo_dries(self, node, tiny_cfg):
        """Requesting more evictions than resident pages yields the
        possible amount, not an error (callers loop on progress)."""
        vmm = VirtualMemoryManager(node, ThpPolicy.never(), tiny_cfg)
        vmm.swap_device = SwapDevice()
        vma = vmm.mmap("a", 4 * tiny_cfg.pages.base_page_size)
        vmm.touch(vma)
        assert vmm.swap_out_pages(64) == 4
        assert vma.swapped_pages == 4

    def test_swap_out_with_nothing_resident_raises(self, node, tiny_cfg):
        vmm = VirtualMemoryManager(node, ThpPolicy.never(), tiny_cfg)
        vmm.swap_device = SwapDevice()
        vma = vmm.mmap("a", 2 * tiny_cfg.pages.base_page_size)
        vmm.touch(vma)
        vmm.swap_out_pages(2)
        with pytest.raises(OutOfMemoryError):
            vmm.swap_out_pages(1)

    def test_touch_under_extreme_deficit_completes(self, node, tiny_cfg):
        """Even with only a couple of free frames, the fault storm must
        terminate with everything either resident or swapped."""
        hog = Memhog(node)
        hog.leave_free_bytes(2 * tiny_cfg.pages.base_page_size)
        vmm = VirtualMemoryManager(node, ThpPolicy.never(), tiny_cfg)
        vmm.swap_device = SwapDevice()
        vma = vmm.mmap("a", 32 * tiny_cfg.pages.base_page_size)
        vmm.touch(vma)
        assert vma.resident_pages + vma.swapped_pages == 32
        assert vma.resident_pages >= 1
        assert vmm.swap_device.pages_out >= 30


class TestHarnessGuards:
    def test_negative_free_target_rejected(self):
        from repro.config import tiny
        from repro.experiments.harness import ExperimentRunner
        from repro.experiments.policies import POLICIES
        from repro.experiments.scenarios import oversubscribed

        runner = ExperimentRunner(config=tiny(), datasets=("test-small",))
        # test-small's footprint is ~41KB; a 1.0 "GB" (64KB on TINY)
        # deficit would leave negative free memory.
        with pytest.raises(ExperimentError):
            runner.run_cell(
                "bfs", "test-small", POLICIES["base4k"], oversubscribed(1.0)
            )
