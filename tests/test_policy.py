"""Unit tests for the repro.policy hook API, registry and zoo
(docs/policies.md).

The golden byte-equivalence of the built-in modes lives in
``test_policy_golden.py``; this file covers the hook semantics, the
read-only PolicyView sandbox, the ``NAME[:k=v,...]`` registry grammar,
and the zoo's deterministic managers.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import tiny
from repro.errors import ReproError
from repro.experiments.harness import ExperimentRunner
from repro.experiments.parse import parse_policy
from repro.experiments.policies import POLICIES, Policy
from repro.experiments.scenarios import fresh
from repro.mem.thp import ThpMode, ThpPolicy
from repro.mem.vmm import VirtualMemoryManager
from repro.policy import (
    BASE_PAGES,
    BasePagePolicy,
    BuiltinThpHook,
    PageDecision,
    PagePolicy,
    PolicyView,
    PromotionCandidate,
)
from repro.policy.registry import (
    canonical_spec,
    get_policy,
    parse_policy_spec,
    register_policy,
    registered_policies,
)
from repro.policy.zoo import AdvisorHook, AutotunerHook, SampledHotnessManager
from repro.runstate.serialize import spec_fingerprint


def make_vmm(node, cfg, policy=None):
    return VirtualMemoryManager(node, policy or ThpPolicy.never(), cfg)


# ----------------------------------------------------------------------
# PolicyView — the read-only sandbox
# ----------------------------------------------------------------------


class TestPolicyView:
    def test_rejects_attribute_writes(self, node, tiny_cfg):
        view = make_vmm(node, tiny_cfg).policy_view
        with pytest.raises(AttributeError, match="read-only"):
            view.cached = 1
        with pytest.raises(AttributeError, match="read-only"):
            view.free_frames = 0

    def test_rejects_attribute_deletes(self, node, tiny_cfg):
        view = make_vmm(node, tiny_cfg).policy_view
        with pytest.raises(AttributeError, match="read-only"):
            del view.free_frames

    def test_accessors_return_scalars_and_copies(self, node, tiny_cfg):
        vmm = make_vmm(node, tiny_cfg)
        vma = vmm.mmap("prop", 2 * tiny_cfg.pages.huge_page_size)
        vmm.touch(vma)
        view = vmm.policy_view
        assert view.free_frames == node.free_frame_count
        assert view.vma_names() == ("prop",)
        assert view.resident_pages("prop") == vma.frame.size
        assert 0.0 <= view.huge_fraction("prop") <= 1.0
        snapshot = view.ledger_snapshot()
        snapshot.clear()  # a copy: clearing must not touch the ledger
        assert view.ledger_snapshot() != {} or snapshot == {}


# ----------------------------------------------------------------------
# Hook semantics at the VMM decision points
# ----------------------------------------------------------------------


class _DenyAll(BasePagePolicy):
    """Base pages everywhere, never promote, never demote."""

    name = "deny-all"


class _PromoteReversed(BasePagePolicy):
    """Promote every candidate, in reverse scan order."""

    name = "promote-reversed"

    def on_khugepaged_scan(self, candidates, view):
        return tuple(reversed(candidates))


class TestCustomHooks:
    def _touch_all(self, vmm, vma):
        vmm.touch(vma)

    def test_deny_all_faults_base_pages(self, node, tiny_cfg):
        thp = ThpPolicy(mode=ThpMode.ALWAYS, hooks=_DenyAll())
        vmm = make_vmm(node, tiny_cfg, thp)
        vma = vmm.mmap("prop", 2 * tiny_cfg.pages.huge_page_size)
        self._touch_all(vmm, vma)
        assert (vma.huge_region < 0).all()

    def test_deny_all_blocks_khugepaged(self, node, tiny_cfg):
        thp = ThpPolicy(
            mode=ThpMode.ALWAYS, fault_alloc=False, hooks=_DenyAll()
        )
        vmm = make_vmm(node, tiny_cfg, thp)
        vma = vmm.mmap("prop", 2 * tiny_cfg.pages.huge_page_size)
        self._touch_all(vmm, vma)
        assert vmm.khugepaged_pass() == 0
        assert (vma.huge_region < 0).all()

    def test_custom_selection_controls_promotion_order(
        self, node, tiny_cfg
    ):
        thp = ThpPolicy(
            mode=ThpMode.ALWAYS,
            fault_alloc=False,
            hooks=_PromoteReversed(),
        )
        vmm = make_vmm(node, tiny_cfg, thp)
        vma = vmm.mmap("prop", 2 * tiny_cfg.pages.huge_page_size)
        self._touch_all(vmm, vma)
        assert vmm.khugepaged_pass() == 2
        assert (vma.huge_region >= 0).all()

    def test_builtin_hook_matches_knob_semantics(self):
        grid = [
            (advised, full, partial)
            for advised in (False, True)
            for full in (False, True)
            for partial in (False, True)
        ]
        from repro.policy.hooks import FaultContext

        for mode in (ThpMode.NEVER, ThpMode.ALWAYS, ThpMode.MADVISE):
            thp = ThpPolicy(mode=mode)
            hook = BuiltinThpHook(thp)
            for advised, full, partial in grid:
                ctx = FaultContext(
                    vma_name="a",
                    chunk=0,
                    advised=advised,
                    chunk_full=full,
                    partially_mapped=partial,
                )
                expected = (
                    thp.fault_alloc
                    and full
                    and thp.wants_huge(advised)
                    and not partial
                )
                decision = hook.on_fault(ctx, None)
                assert decision.huge == expected, (mode, ctx)
                candidate = PromotionCandidate(
                    vma_index=0, vma_name="a", chunk=0, advised=advised
                )
                kept = hook.on_khugepaged_scan((candidate,), None)
                assert bool(kept) == thp.wants_huge(advised)

    def test_zoo_hooks_satisfy_the_protocol(self):
        assert isinstance(AdvisorHook(), PagePolicy)
        assert isinstance(AutotunerHook(), PagePolicy)
        assert isinstance(BuiltinThpHook(ThpPolicy.always()), PagePolicy)
        assert isinstance(BasePagePolicy(), PagePolicy)

    def test_autotuner_hook_keeps_kernel_passive(self):
        hook = AutotunerHook()
        candidate = PromotionCandidate(
            vma_index=0, vma_name="a", chunk=0, advised=True
        )
        assert hook.on_khugepaged_scan((candidate,), None) == ()
        from repro.policy.hooks import FaultContext

        ctx = FaultContext(
            vma_name="a",
            chunk=0,
            advised=True,
            chunk_full=True,
            partially_mapped=False,
        )
        assert hook.on_fault(ctx, None) is BASE_PAGES


# ----------------------------------------------------------------------
# Registry: the NAME[:k=v,...] grammar
# ----------------------------------------------------------------------


class TestRegistry:
    def test_parse_spec_types_values(self):
        name, params = parse_policy_spec(
            "ingens:threshold=0.8,per_pass=4,flag=true,opt=none"
        )
        assert name == "ingens"
        assert params == {
            "threshold": 0.8,
            "per_pass": 4,
            "flag": True,
            "opt": None,
        }

    def test_parse_spec_rejects_duplicates_and_malformed(self):
        with pytest.raises(ReproError):
            parse_policy_spec("ingens:a=1,a=2")
        with pytest.raises(ReproError):
            parse_policy_spec("ingens:noequals")
        with pytest.raises(ReproError):
            parse_policy_spec("")

    def test_canonical_spec_sorts_keys(self):
        assert (
            canonical_spec("z", {"b": 2, "a": 1}) == "z:a=1,b=2"
        )

    def test_bare_names_keep_builder_identity(self):
        # Aliases of legacy fixed policies must fingerprint identically
        # to those policies: the builder's native name survives.
        assert get_policy("never") is POLICIES["base4k"]
        assert get_policy("greedy-always") is POLICIES["thp"]
        assert get_policy("ingens").name == "ingens(u=90%)"

    def test_params_fold_into_the_name(self):
        policy = get_policy("ingens:threshold=0.8")
        assert policy.name == "ingens:threshold=0.8"
        assert policy.plan.label == "ingens(u=80%)"

    def test_unknown_name_lists_registry(self):
        with pytest.raises(ReproError, match="ingens"):
            get_policy("no-such-policy")

    def test_unknown_param_is_a_repro_error(self):
        with pytest.raises(ReproError, match="param"):
            get_policy("ingens:bogus_knob=1")

    def test_dataset_aware_entry_requires_dataset(self):
        with pytest.raises(ReproError, match="dataset"):
            get_policy("advisor")

    def test_advisor_materializes_with_dataset(self):
        policy = get_policy(
            "advisor", dataset="test-small", config=tiny()
        )
        assert isinstance(policy, Policy)
        thp = policy.make_thp()
        assert isinstance(thp.hooks, AdvisorHook)

    def test_register_is_idempotent_for_same_builder(self):
        entry = registered_policies()["ingens"]
        register_policy("ingens", entry.builder, summary=entry.summary)

    def test_register_conflict_needs_replace(self):
        def other_builder():  # pragma: no cover - never called
            raise AssertionError

        with pytest.raises(ReproError, match="replace"):
            register_policy("ingens", other_builder)

    def test_register_rejects_grammar_chars_in_name(self):
        for bad in ("a:b", "a,b", "a=b", "a b"):
            with pytest.raises(ReproError):
                register_policy(bad, lambda: None)

    def test_parse_policy_falls_back_to_registry(self):
        assert parse_policy("base4k") is POLICIES["base4k"]
        assert parse_policy("khugepaged").name == "khugepaged"
        assert (
            parse_policy("ingens:threshold=0.8").name
            == "ingens:threshold=0.8"
        )
        with pytest.raises(ReproError, match="khugepaged"):
            parse_policy("definitely-not-registered")

    def test_parameterizations_fingerprint_distinctly(self):
        def fingerprint(spec):
            return spec_fingerprint(
                "bfs",
                "test-small",
                get_policy(spec),
                fresh(),
                3,
                "tiny",
                None,
                2,
                None,
            )

        prints = {
            spec: fingerprint(spec)
            for spec in (
                "ingens",
                "ingens:threshold=0.8",
                "ingens:threshold=0.7",
                "hawkeye",
                "hawkeye:per_pass=4",
            )
        }
        assert len(set(prints.values())) == len(prints)


# ----------------------------------------------------------------------
# SampledHotnessManager — determinism of the sampled-bit signal
# ----------------------------------------------------------------------


class _FakeProfiler:
    def __init__(self, counts: np.ndarray) -> None:
        self._counts = counts

    def page_counts(self, vma) -> np.ndarray:
        return self._counts


class TestSampledHotnessManager:
    def _manager(self, cfg, counts, stride=2):
        manager = SampledHotnessManager(sample_stride=stride)
        manager.profiler = _FakeProfiler(counts)
        manager.config = cfg
        return manager

    def test_rejects_bad_stride(self):
        with pytest.raises(ValueError):
            SampledHotnessManager(sample_stride=0)

    def test_hot_bits_only_see_sampled_pages(self, node, tiny_cfg):
        vmm = make_vmm(node, tiny_cfg)
        vma = vmm.mmap("prop", 2 * tiny_cfg.pages.huge_page_size)
        pages = vma.frame.size
        counts = np.zeros(pages, dtype=np.int64)
        counts[1] = 100  # touched, but off the sampling stride
        manager = self._manager(tiny_cfg, counts, stride=2)
        assert manager._chunk_hot_bits(vma).sum() == 0
        counts[2] = 1  # touched on the stride
        assert manager._chunk_hot_bits(vma).sum() == 1

    def test_signal_is_bit_level_not_count_level(self, node, tiny_cfg):
        vmm = make_vmm(node, tiny_cfg)
        vma = vmm.mmap("prop", 2 * tiny_cfg.pages.huge_page_size)
        pages = vma.frame.size
        hot = np.zeros(pages, dtype=np.int64)
        hot[0] = 10_000  # one scorching page
        spread = np.zeros(pages, dtype=np.int64)
        spread[: pages // 2 : 2] = 1  # many barely-touched pages
        one_bit = self._manager(tiny_cfg, hot, stride=2)
        many_bits = self._manager(tiny_cfg, spread, stride=2)
        assert one_bit._chunk_hot_bits(vma).max() == 1
        assert many_bits._chunk_hot_bits(vma).max() > 1

    def test_deterministic_across_instances(self, node, tiny_cfg):
        vmm = make_vmm(node, tiny_cfg)
        vma = vmm.mmap("prop", 4 * tiny_cfg.pages.huge_page_size)
        rng = np.random.default_rng(7)
        counts = rng.integers(0, 5, size=vma.frame.size)
        a = self._manager(tiny_cfg, counts)._chunk_hot_bits(vma)
        b = self._manager(tiny_cfg, counts)._chunk_hot_bits(vma)
        assert np.array_equal(a, b)

    def test_end_to_end_runs_are_identical(self):
        def run_once():
            runner = ExperimentRunner(
                config=tiny(), datasets=("test-small",)
            )
            run = runner.run_cell(
                "bfs", "test-small", get_policy("hawkeye-bits"), fresh()
            )
            return (run.total_cycles, run.manager_promotions)

        assert run_once() == run_once()
