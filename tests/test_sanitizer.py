"""Tests for MemSan, the simulated-memory sanitizer.

Each hook is exercised two ways: the legal path stays silent, and a
deliberately corrupted frame map (or a direct hook call with bad
arguments) raises :class:`MemSanError`.  Sweep tests corrupt real state
built through the public APIs rather than constructing fakes.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.sanitizer import (
    MemSanitizer,
    NullSanitizer,
    make_sanitizer,
    sanitizer_enabled,
    set_sanitize,
)
from repro.config import tiny
from repro.errors import MemSanError, ReproError
from repro.graph.generators import uniform_graph
from repro.machine.machine import Machine
from repro.mem.physical import FrameState, NodeMemory, PhysicalMemory
from repro.mem.stats import KernelLedger
from repro.mem.thp import ThpPolicy
from repro.mem.vmm import VirtualMemoryManager
from repro.workloads.bfs import Bfs


@pytest.fixture
def san() -> MemSanitizer:
    return MemSanitizer()


@pytest.fixture
def san_node(tiny_cfg, san) -> NodeMemory:
    """A TINY node with the sanitizer attached and one registered owner."""
    ledger = KernelLedger(cost=tiny_cfg.cost)
    node = NodeMemory(0, tiny_cfg, ledger, sanitizer=san)
    node.register_owner(object())  # owner id 0
    return node


def frames_of(node: NodeMemory, count: int) -> np.ndarray:
    return node.alloc_frames(count, owner_id=0)


# ----------------------------------------------------------------------
# Enablement semantics
# ----------------------------------------------------------------------


class TestEnablement:
    def test_set_sanitize_returns_previous(self):
        previous = set_sanitize(False)
        try:
            assert set_sanitize(True) is False
            assert set_sanitize(None) is True
        finally:
            set_sanitize(previous)

    def test_explicit_false_beats_override(self):
        """The overhead benchmark's baseline must be guaranteed off."""
        assert make_sanitizer(False) is None

    def test_explicit_true_beats_override(self):
        previous = set_sanitize(False)
        try:
            assert isinstance(make_sanitizer(True), MemSanitizer)
            assert make_sanitizer() is None
        finally:
            set_sanitize(previous)

    @pytest.mark.parametrize("value", ["", "0", "false", "no", "off", "OFF"])
    def test_falsey_env_values(self, monkeypatch, value):
        previous = set_sanitize(None)
        try:
            monkeypatch.setenv("REPRO_SANITIZE", value)
            assert not sanitizer_enabled()
        finally:
            set_sanitize(previous)

    @pytest.mark.parametrize("value", ["1", "true", "yes", "on"])
    def test_truthy_env_values(self, monkeypatch, value):
        previous = set_sanitize(None)
        try:
            monkeypatch.setenv("REPRO_SANITIZE", value)
            assert sanitizer_enabled()
        finally:
            set_sanitize(previous)

    def test_machine_sanitize_false_forces_off(self, tiny_cfg):
        machine = Machine(tiny_cfg, sanitize=False)
        assert machine.sanitizer is None
        assert machine.physical.sanitizer is None
        assert all(n.sanitizer is None for n in machine.physical.nodes)

    def test_machine_sanitize_true_wires_everything(self, tiny_cfg):
        machine = Machine(tiny_cfg, sanitize=True)
        assert isinstance(machine.sanitizer, MemSanitizer)
        assert machine.thp.sanitizer is machine.sanitizer
        assert all(
            n.sanitizer is machine.sanitizer for n in machine.physical.nodes
        )

    def test_node_default_is_off(self, tiny_cfg):
        """The zero-cost-when-off contract: plain nodes carry no hooks."""
        node = NodeMemory(0, tiny_cfg, KernelLedger(cost=tiny_cfg.cost))
        assert node.sanitizer is None

    def test_physical_memory_picks_up_ambient(self, tiny_cfg):
        previous = set_sanitize(True)
        try:
            assert isinstance(PhysicalMemory(tiny_cfg).sanitizer, MemSanitizer)
            set_sanitize(False)
            assert PhysicalMemory(tiny_cfg).sanitizer is None
        finally:
            set_sanitize(previous)

    def test_memsan_error_is_repro_error(self):
        assert issubclass(MemSanError, ReproError)


# ----------------------------------------------------------------------
# Allocator hooks
# ----------------------------------------------------------------------


class TestAllocatorHooks:
    def test_legal_lifecycle_is_silent(self, san_node, san):
        frames = frames_of(san_node, 8)
        san_node.free_frames(frames)
        assert san.checks > 0

    def test_double_alloc_detected(self, san_node, san):
        frames = frames_of(san_node, 4)
        with pytest.raises(MemSanError, match="double-alloc"):
            san.on_alloc_frames(san_node, frames, FrameState.MOVABLE)

    def test_alloc_must_not_install_free(self, san_node, san):
        with pytest.raises(MemSanError, match="FREE"):
            san.on_alloc_frames(
                san_node, np.array([0], dtype=np.int64), FrameState.FREE
            )

    def test_double_free_detected(self, san_node):
        frames = frames_of(san_node, 4)
        san_node.free_frames(frames)
        with pytest.raises(MemSanError, match="double-free"):
            san_node.free_frames(frames)

    def test_free_of_huge_frame_detected(self, san_node):
        region = san_node.alloc_huge_region(owner_id=0)
        span = san_node.region_frames(region)
        one = np.array([span.start], dtype=np.int64)
        with pytest.raises(MemSanError, match="huge page"):
            san_node.free_frames(one)

    def test_release_of_free_frame_detected(self, san_node, san):
        with pytest.raises(MemSanError, match="double-free"):
            san.on_release_frame(san_node, 3)

    def test_claim_requires_fully_free_region(self, san_node, san):
        frames_of(san_node, 1)  # dirties region 0 (broken-first policy)
        dirty = int(san_node.region_of(0))
        with pytest.raises(MemSanError, match="fully-free"):
            san.on_claim_region(san_node, dirty, FrameState.HUGE)

    def test_claim_rejects_out_of_range_region(self, san_node, san):
        with pytest.raises(MemSanError, match="outside"):
            san.on_claim_region(
                san_node, san_node.num_regions, FrameState.HUGE
            )

    def test_double_free_of_huge_region_detected(self, san_node):
        region = san_node.alloc_huge_region(owner_id=0)
        san_node.free_huge_region(region)
        with pytest.raises(MemSanError, match="double-free of huge region"):
            san_node.free_huge_region(region)

    def test_mixed_owner_region_free_detected(self, san_node):
        region = san_node.alloc_huge_region(owner_id=0)
        span = san_node.region_frames(region)
        san_node.owner_id[span.start] = 7  # corrupt one frame's owner
        with pytest.raises(MemSanError, match="mixed"):
            san_node.free_huge_region(region)

    def test_demote_without_huge_frames_detected(self, san_node):
        with pytest.raises(MemSanError, match="no HUGE frames"):
            san_node.demote_region(0)

    def test_migrating_huge_frame_detected(self, san_node, san):
        region = san_node.alloc_huge_region(owner_id=0)
        span = san_node.region_frames(region)
        free = np.flatnonzero(san_node.state == int(FrameState.FREE))[:1]
        with pytest.raises(MemSanError, match="non-MOVABLE"):
            san.on_migrate_frames(san_node, [span.start], free)

    def test_migrating_onto_occupied_target_detected(self, san_node, san):
        source = frames_of(san_node, 1)
        target = frames_of(san_node, 1)  # occupied, not a legal target
        with pytest.raises(MemSanError, match="non-free"):
            san.on_migrate_frames(san_node, source.tolist(), target)

    def test_pinning_free_frames_detected(self, san_node):
        free = np.flatnonzero(san_node.state == int(FrameState.FREE))[:2]
        with pytest.raises(MemSanError, match="pin"):
            san_node.pin_frames(free)

    def test_pinning_resident_frames_is_legal(self, san_node):
        frames = frames_of(san_node, 2)
        san_node.pin_frames(frames)
        assert (san_node.state[frames] == int(FrameState.PINNED)).all()


# ----------------------------------------------------------------------
# Node sweep
# ----------------------------------------------------------------------


class TestNodeSweep:
    def test_clean_node_passes(self, san_node, san):
        frames = frames_of(san_node, 16)
        san_node.free_frames(frames[:8])
        san.verify_node(san_node)

    def test_free_frame_with_owner_detected(self, san_node, san):
        san_node.owner_id[5] = 0  # owner without residency
        with pytest.raises(MemSanError, match="still carry an owner"):
            san.verify_node(san_node)

    def test_allocated_frame_without_owner_detected(self, san_node, san):
        san_node.state[5] = int(FrameState.MOVABLE)  # residency, no owner
        with pytest.raises(MemSanError, match="no owner"):
            san.verify_node(san_node)

    def test_unregistered_owner_detected(self, san_node, san):
        frames = frames_of(san_node, 1)
        san_node.owner_id[frames] = 99
        with pytest.raises(MemSanError, match="unregistered"):
            san.verify_node(san_node)

    def test_reclaimable_pinned_frame_detected(self, san_node, san):
        frames = frames_of(san_node, 1)
        san_node.pin_frames(frames)
        san_node.reclaimable[frames] = True
        with pytest.raises(MemSanError, match="reclaimable"):
            san.verify_node(san_node)

    def test_partially_huge_region_detected(self, san_node, san):
        frames = frames_of(san_node, 1)
        san_node.state[frames] = int(FrameState.HUGE)  # lone HUGE frame
        with pytest.raises(MemSanError, match="partially HUGE"):
            san.verify_node(san_node)


# ----------------------------------------------------------------------
# VMM cross-checks
# ----------------------------------------------------------------------


@pytest.fixture
def vmm(san_node, tiny_cfg) -> VirtualMemoryManager:
    return VirtualMemoryManager(san_node, ThpPolicy.always(), tiny_cfg)


class TestVmmSweep:
    def test_clean_vmm_passes(self, vmm, san):
        vma = vmm.mmap("a", 4 * vmm.config.pages.huge_page_size)
        vmm.touch(vma)
        san.verify_vmm(vmm)

    def test_corrupted_page_table_detected(self, vmm, san):
        vma = vmm.mmap("a", 2 * vmm.config.pages.huge_page_size)
        vmm.touch(vma)
        vma.frame[0] += 1  # page table no longer matches its region
        with pytest.raises(MemSanError):
            san.verify_vmm(vmm)

    def test_huge_flag_without_region_detected(self, vmm, san):
        vma = vmm.mmap("a", vmm.config.pages.huge_page_size)
        vmm.touch(vma)
        vma.huge_region[0] = -1  # lose the region, keep the flags
        with pytest.raises(MemSanError):
            san.verify_vmm(vmm)

    def test_stale_frame_map_entry_detected(self, vmm, san):
        vma = vmm.mmap("a", vmm.config.pages.huge_page_size)
        vmm.touch(vma)
        vmm._frame_map[10_000] = (vma, 0)
        with pytest.raises(MemSanError, match="stale"):
            san.verify_vmm(vmm)

    def test_unmap_empties_frame_map(self, vmm, san):
        """Regression: unmapping a huge-backed VMA must also drop the
        reverse-map entries installed for its constituent frames."""
        vma = vmm.mmap("a", 2 * vmm.config.pages.huge_page_size)
        vmm.touch(vma)
        assert vma.is_huge.all()
        assert len(vmm._frame_map) == vma.npages
        vmm.unmap(vma)
        assert vmm._frame_map == {}
        san.verify_teardown(vmm)  # would flag any leak

    def test_teardown_with_live_mapping_detected(self, vmm, san):
        vmm.touch(vmm.mmap("a", vmm.config.pages.huge_page_size))
        with pytest.raises(MemSanError, match="live mappings"):
            san.verify_teardown(vmm)

    def test_teardown_leak_detected(self, vmm, san, san_node):
        vma = vmm.mmap("a", vmm.config.pages.huge_page_size)
        vmm.touch(vma)
        vmm.unmap(vma)
        # Leak one frame back onto the released process.
        san_node.alloc_frames(1, owner_id=vmm.owner_id)
        with pytest.raises(MemSanError, match="leak"):
            san.verify_teardown(vmm)

    def test_khugepaged_pass_runs_sweep(self, san_node, tiny_cfg, san):
        """khugepaged ends with verify_vmm when the sanitizer is on."""
        vmm = VirtualMemoryManager(san_node, ThpPolicy.madvise(), tiny_cfg)
        vma = vmm.mmap("a", tiny_cfg.pages.huge_page_size)
        vmm.touch(vma)
        before = san.checks
        vmm.khugepaged_pass()
        assert san.checks > before


# ----------------------------------------------------------------------
# THP-engine gates
# ----------------------------------------------------------------------


class TestThpGates:
    def test_promoting_huge_chunk_detected(self, vmm, san):
        vma = vmm.mmap("a", vmm.config.pages.huge_page_size)
        vmm.touch(vma)  # ThpPolicy.always maps it huge at fault time
        with pytest.raises(MemSanError, match="already"):
            san.verify_promotion(vma, 0)

    def test_promoting_nonresident_chunk_detected(self, vmm, san):
        vma = vmm.mmap("a", vmm.config.pages.huge_page_size)
        with pytest.raises(MemSanError, match="resident"):
            san.verify_promotion(vma, 0)

    def test_demoting_base_chunk_detected(self, vmm, san):
        vma = vmm.mmap("a", vmm.config.pages.huge_page_size)
        with pytest.raises(MemSanError, match="not"):
            san.verify_demotion(vma, 0)


# ----------------------------------------------------------------------
# Whole-machine integration
# ----------------------------------------------------------------------


class TestMachineIntegration:
    def test_full_run_under_memsan(self, tiny_cfg):
        graph = uniform_graph(num_vertices=512, num_edges=4096, seed=5)
        machine = Machine(tiny_cfg, ThpPolicy.always(), sanitize=True)
        metrics = machine.run(Bfs(graph), load_bytes=64 * 1024,
                              drop_cache_after_load=True)
        assert metrics.total_cycles > 0
        # The sanitizer actually ran: per-allocation hooks plus the
        # end-of-init and teardown sweeps.
        assert machine.sanitizer.checks > 10

    def test_sanitize_false_run_is_unchecked(self, tiny_cfg):
        graph = uniform_graph(num_vertices=512, num_edges=4096, seed=5)
        machine = Machine(tiny_cfg, ThpPolicy.always(), sanitize=False)
        metrics = machine.run(Bfs(graph))
        assert metrics.total_cycles > 0
        assert machine.sanitizer is None

    def test_runs_agree_with_and_without_memsan(self, tiny_cfg):
        """MemSan observes; it must never perturb the simulation."""
        graph = uniform_graph(num_vertices=512, num_edges=4096, seed=5)
        results = []
        for sanitize in (True, False):
            machine = Machine(tiny_cfg, ThpPolicy.always(), sanitize=sanitize)
            results.append(machine.run(Bfs(graph)).total_cycles)
        assert results[0] == results[1]


# ----------------------------------------------------------------------
# NullSanitizer
# ----------------------------------------------------------------------


class TestNullSanitizer:
    def test_hooks_are_noops(self):
        null = NullSanitizer()
        assert null.on_free_frames(None, None) is None
        assert null.verify_node(None) is None
        assert null.checks == 0

    def test_non_hook_attributes_still_work(self):
        null = NullSanitizer()
        with pytest.raises(MemSanError):
            null._fail("boom")
