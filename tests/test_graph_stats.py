"""Tests for degree-distribution statistics."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph.csr import CsrGraph
from repro.graph.generators import power_law_graph, uniform_graph
from repro.graph.stats import (
    DegreeStats,
    degree_stats,
    gini_coefficient,
    hot_set_fraction,
)


class TestGini:
    def test_uniform_is_zero(self):
        assert gini_coefficient(np.full(100, 7)) == pytest.approx(0.0)

    def test_single_holder_approaches_one(self):
        values = np.zeros(1000)
        values[0] = 100
        assert gini_coefficient(values) > 0.95

    def test_empty_and_zero(self):
        assert gini_coefficient(np.array([])) == 0.0
        assert gini_coefficient(np.zeros(5)) == 0.0

    @given(
        st.lists(
            st.integers(min_value=0, max_value=1000),
            min_size=1,
            max_size=200,
        )
    )
    @settings(max_examples=100, deadline=None)
    def test_bounds(self, values):
        g = gini_coefficient(np.array(values))
        assert -1e-9 <= g < 1.0

    @given(
        st.lists(
            st.integers(min_value=0, max_value=1000),
            min_size=1,
            max_size=100,
        ),
        st.integers(min_value=2, max_value=9),
    )
    @settings(max_examples=100, deadline=None)
    def test_scale_invariant(self, values, factor):
        base = gini_coefficient(np.array(values))
        scaled = gini_coefficient(np.array(values) * factor)
        assert scaled == pytest.approx(base, abs=1e-9)


class TestHotSetFraction:
    def test_uniform_needs_coverage_fraction(self):
        frac = hot_set_fraction(np.full(100, 5), coverage=0.8)
        assert frac == pytest.approx(0.8)

    def test_skewed_needs_less(self):
        degrees = np.ones(100, dtype=np.int64)
        degrees[:5] = 1000
        assert hot_set_fraction(degrees, coverage=0.8) <= 0.06

    def test_empty(self):
        assert hot_set_fraction(np.array([], dtype=np.int64)) == 0.0

    @given(
        st.lists(
            st.integers(min_value=0, max_value=100),
            min_size=1,
            max_size=100,
        ),
        st.floats(min_value=0.1, max_value=0.99),
    )
    @settings(max_examples=100, deadline=None)
    def test_monotone_in_coverage(self, values, coverage):
        degrees = np.array(values, dtype=np.int64)
        low = hot_set_fraction(degrees, coverage=coverage * 0.5)
        high = hot_set_fraction(degrees, coverage=coverage)
        assert low <= high + 1e-12


class TestDegreeStats:
    def test_power_law_vs_uniform(self):
        skewed = power_law_graph(4096, 32768, alpha=1.1, seed=3)
        flat = uniform_graph(4096, 32768, seed=3)
        s = degree_stats(skewed)
        u = degree_stats(flat)
        assert s.gini > u.gini
        assert s.hot_set_fraction < u.hot_set_fraction
        assert s.max_degree > u.max_degree

    def test_skew_class_labels(self):
        base = dict(max_degree=1, average_degree=1.0, gini=0.5,
                    coverage=0.8, zero_degree_fraction=0.0)
        assert DegreeStats(hot_set_fraction=0.01, **base).skew_class == "extreme"
        assert DegreeStats(hot_set_fraction=0.2, **base).skew_class == "high"
        assert DegreeStats(hot_set_fraction=0.5, **base).skew_class == "moderate"
        assert DegreeStats(hot_set_fraction=0.9, **base).skew_class == "low"

    def test_zero_degree_fraction(self):
        g = CsrGraph.from_edges(np.array([0]), np.array([1]), 4)
        stats = degree_stats(g)
        assert stats.zero_degree_fraction == pytest.approx(0.75)

    def test_evaluation_datasets_are_skewed(self):
        """Every Table 2 analogue must sit in the regime the paper's
        optimization targets (a clearly-skewed property access
        distribution)."""
        from repro.graph.datasets import load_dataset

        stats = degree_stats(load_dataset("test-small").graph)
        assert stats.average_degree > 0
