"""Parallel sweep engine tests (docs/performance.md).

The contract under test: a figure batch run with ``workers=N`` produces
byte-identical saved output and identical journal record payloads to
the serial path — including under armed fault plans, mid-sweep resume,
and hung or crashed workers.
"""

from __future__ import annotations

import multiprocessing
import os
import time

import pytest

from repro.experiments import figures
from repro.experiments.figures import fig07_pressure_alloc_order
from repro.experiments.harness import CellFailure, ExperimentRunner
from repro.experiments.policies import POLICIES
from repro.experiments.scenarios import fresh
from repro.faults import FaultPlan
from repro.graph.reorder import ORDERINGS
from repro.parallel.pool import resolve_workers
from repro.runstate import RunJournal

WORKLOADS = ("bfs",)
DATASETS = ("test-small",)

fork_only = pytest.mark.skipif(
    multiprocessing.get_start_method() != "fork",
    reason="hang/crash injection monkeypatches across a fork boundary",
)


@pytest.fixture
def many_cpus(monkeypatch):
    """Pretend the host has plenty of CPUs.

    ``resolve_workers`` clamps to ``os.cpu_count()`` (the 1-CPU 0.82x
    regression guard), which on a small CI host would silently reroute
    every ``workers=N`` test through the serial path.  These tests are
    *about* the pool, so lift the ceiling."""
    monkeypatch.setattr(os, "cpu_count", lambda: 8)


def run_fig07(runner: ExperimentRunner):
    return fig07_pressure_alloc_order(
        runner, workloads=WORKLOADS, datasets=DATASETS
    )


def fig07_cells() -> list[tuple]:
    """The fig07 batch, enumerated through the planning shim."""
    planner = figures._PlanningRunner(ExperimentRunner())
    fig07_pressure_alloc_order.__wrapped__(
        planner, workloads=WORKLOADS, datasets=DATASETS
    )
    return planner.cells


class TestResolveWorkers:
    def test_zero_means_one_per_cpu(self):
        assert resolve_workers(0) == (os.cpu_count() or 1)

    def test_negative_clamps_to_serial(self, many_cpus):
        assert resolve_workers(-3) == 1

    def test_positive_passes_through_below_cpu_count(self, many_cpus):
        assert resolve_workers(4) == 4

    def test_clamped_to_available_cpus(self, monkeypatch):
        monkeypatch.setattr(os, "cpu_count", lambda: 2)
        assert resolve_workers(8) == 2

    def test_one_cpu_falls_back_to_serial(self, monkeypatch):
        monkeypatch.setattr(os, "cpu_count", lambda: 1)
        assert resolve_workers(4) == 1


@pytest.mark.usefixtures("many_cpus")
class TestSerialParallelEquivalence:
    @pytest.fixture(scope="class")
    def reference(self, tmp_path_factory):
        """Serial saved-output bytes + figure JSON."""
        directory = tmp_path_factory.mktemp("serial")
        result = run_fig07(ExperimentRunner(workers=1))
        txt_path, json_path = result.save(str(directory))
        return {
            "json": result.to_json(),
            "txt_bytes": open(txt_path, "rb").read(),
            "json_bytes": open(json_path, "rb").read(),
        }

    def test_saved_output_byte_identical(self, tmp_path, reference):
        result = run_fig07(ExperimentRunner(workers=4))
        txt_path, json_path = result.save(str(tmp_path))
        assert open(txt_path, "rb").read() == reference["txt_bytes"]
        assert open(json_path, "rb").read() == reference["json_bytes"]

    def test_workers_zero_resolves_and_matches(self, reference):
        result = run_fig07(ExperimentRunner(workers=0))
        assert result.to_json() == reference["json"]

    def test_journal_bytes_identical(self, tmp_path, reference):
        serial_path = str(tmp_path / "serial.jsonl")
        run_fig07(ExperimentRunner(workers=1, journal=RunJournal(serial_path)))
        parallel_path = str(tmp_path / "parallel.jsonl")
        result = run_fig07(
            ExperimentRunner(workers=4, journal=RunJournal(parallel_path))
        )
        serial_bytes = open(serial_path, "rb").read()
        assert serial_bytes == open(parallel_path, "rb").read()
        assert serial_bytes  # the batch actually journaled something
        assert result.to_json() == reference["json"]

    def test_fault_armed_journal_and_failures_identical(self, tmp_path):
        def journaled(workers: int, path: str):
            runner = ExperimentRunner(
                workers=workers,
                journal=RunJournal(path),
                fault_plan=FaultPlan.parse("compaction:1.0", seed=0),
            )
            result = run_fig07(runner)
            return result, runner.failures

        serial_path = str(tmp_path / "serial.jsonl")
        parallel_path = str(tmp_path / "parallel.jsonl")
        serial_result, serial_failures = journaled(1, serial_path)
        parallel_result, parallel_failures = journaled(4, parallel_path)
        assert open(serial_path, "rb").read() == open(
            parallel_path, "rb"
        ).read()
        assert serial_result.to_json() == parallel_result.to_json()
        assert serial_failures  # the armed plan actually failed cells
        assert serial_failures == parallel_failures

    def test_resume_mid_sweep_matches_serial_resume(self, tmp_path):
        def partial_journal(path: str) -> None:
            runner = ExperimentRunner(journal=RunJournal(path))
            runner.run_cell(
                "bfs", "test-small", POLICIES["base4k"], fresh()
            )
            runner.run_cell("bfs", "test-small", POLICIES["thp"], fresh())

        def resume(workers: int, path: str):
            partial_journal(path)
            runner = ExperimentRunner(
                workers=workers, journal=RunJournal(path), resume=True
            )
            return run_fig07(runner)

        serial_path = str(tmp_path / "serial.jsonl")
        parallel_path = str(tmp_path / "parallel.jsonl")
        serial_result = resume(1, serial_path)
        parallel_result = resume(4, parallel_path)
        assert open(serial_path, "rb").read() == open(
            parallel_path, "rb"
        ).read()
        assert serial_result.to_json() == parallel_result.to_json()

    def test_resumed_cells_never_dispatched(self, tmp_path, monkeypatch):
        """Journal-completed cells must not reach the pool at all."""
        path = str(tmp_path / "run.jsonl")
        cells = fig07_cells()
        serial = ExperimentRunner(journal=RunJournal(path))
        for cell in cells:
            serial.run_cell(*cell)

        dispatched: list = []
        import repro.parallel.pool as pool

        real_execute = pool.execute_cells

        def spying(runner, batch, workers):
            dispatched.extend(batch)
            return real_execute(runner, batch, workers)

        monkeypatch.setattr(pool, "execute_cells", spying)
        resumed = ExperimentRunner(
            workers=4, journal=RunJournal(path), resume=True
        )
        results = resumed.run_cells(cells)
        assert dispatched == []
        assert len(results) == len(cells)
        assert all(getattr(r, "ok", True) for r in results)


@pytest.mark.usefixtures("many_cpus")
class TestRunCellsSemantics:
    def test_duplicate_cells_execute_once(self):
        cell = ("bfs", "test-small", POLICIES["base4k"], fresh())
        runner = ExperimentRunner(workers=2)
        results = runner.run_cells([cell, cell, cell])
        assert results[0] is results[1] is results[2]

    def test_strict_mode_never_reaches_the_pool(self, monkeypatch):
        import repro.parallel.pool as pool

        def forbidden(*args, **kwargs):
            raise AssertionError("strict mode must stay serial")

        monkeypatch.setattr(pool, "execute_cells", forbidden)
        runner = ExperimentRunner(workers=4, capture_failures=False)
        cells = [
            ("bfs", "test-small", POLICIES["base4k"], fresh()),
            ("bfs", "test-small", POLICIES["thp"], fresh()),
        ]
        results = runner.run_cells(cells)
        assert len(results) == 2
        assert all(getattr(r, "ok", True) for r in results)

    def test_cached_cells_short_circuit(self, monkeypatch):
        import repro.parallel.pool as pool

        runner = ExperimentRunner(workers=4)
        cells = fig07_cells()
        warm = runner.run_cells(cells)

        def forbidden(*args, **kwargs):
            raise AssertionError("cached batch must not re-dispatch")

        monkeypatch.setattr(pool, "execute_cells", forbidden)
        again = runner.run_cells(cells)
        assert [id(r) for r in again] == [id(r) for r in warm]


@fork_only
@pytest.mark.usefixtures("many_cpus")
class TestPoolAdversity:
    def test_hung_worker_absorbed_as_watchdog_failure(self, monkeypatch):
        """A wedged worker is terminated by the parent, its cell
        absorbed as ``FAILED(watchdog)``, and the batch completes."""
        hang_policy = "thp"
        original = ExperimentRunner._execute_cell

        def hanging(self, workload, dataset, policy, scenario):
            if policy.name == hang_policy:
                time.sleep(300.0)
            return original(self, workload, dataset, policy, scenario)

        monkeypatch.setattr(ExperimentRunner, "_execute_cell", hanging)
        runner = ExperimentRunner(workers=2, cell_deadline_seconds=0.5)
        cells = [
            ("bfs", "test-small", POLICIES[hang_policy], fresh()),
            ("bfs", "test-small", POLICIES["base4k"], fresh()),
            ("bfs", "test-small", POLICIES["thp-opt"], fresh()),
        ]
        results = runner.run_cells(cells)
        assert isinstance(results[0], CellFailure)
        assert results[0].error == "watchdog"
        assert results[0] in runner.failures
        assert all(getattr(r, "ok", True) for r in results[1:])

    def test_crashed_worker_cell_reruns_in_parent(self, monkeypatch):
        """A worker that dies without reporting loses nothing: the
        parent reclaims the in-flight cell and runs it locally."""
        parent_pid = os.getpid()
        crash_policy = "thp"
        original = ExperimentRunner._execute_cell

        def crashing(self, workload, dataset, policy, scenario):
            if policy.name == crash_policy and os.getpid() != parent_pid:
                os._exit(17)
            return original(self, workload, dataset, policy, scenario)

        monkeypatch.setattr(ExperimentRunner, "_execute_cell", crashing)
        runner = ExperimentRunner(workers=2)
        cells = [
            ("bfs", "test-small", POLICIES[crash_policy], fresh()),
            ("bfs", "test-small", POLICIES["base4k"], fresh()),
        ]
        results = runner.run_cells(cells)
        assert len(results) == 2
        assert all(getattr(r, "ok", True) for r in results)
        reference = ExperimentRunner().run_cell(*cells[0])
        assert results[0].kernel_cycles == reference.kernel_cycles


class TestPlanningPass:
    @pytest.mark.parametrize(
        "figure",
        [
            figures.fig01_thp_speedup,
            figures.fig03_tlb_miss_rates,
            figures.fig07_pressure_alloc_order,
        ],
        ids=lambda f: f.__name__,
    )
    def test_planned_cells_match_serial_call_order(self, figure):
        """The planning pass must record exactly the ``run_cell`` calls
        a serial run makes, in the same order — that order is what makes
        the parallel journal byte-identical to the serial one."""
        runner = ExperimentRunner()
        recorded: list[tuple] = []
        original = runner.run_cell

        def recording(workload, dataset, policy, scenario):
            recorded.append((workload, dataset, policy.name, scenario.name))
            return original(workload, dataset, policy, scenario)

        runner.run_cell = recording
        figure(runner, workloads=WORKLOADS, datasets=DATASETS)

        planner = figures._PlanningRunner(ExperimentRunner())
        figure.__wrapped__(planner, workloads=WORKLOADS, datasets=DATASETS)
        planned = [
            (w, d, p.name, s.name) for w, d, p, s in planner.cells
        ]
        assert planned == recorded
        assert planned  # the figure actually enumerates cells

    def test_planning_runner_records_nothing_real(self):
        planner = figures._PlanningRunner(ExperimentRunner())
        outcome = planner.run_cell(
            "bfs", "test-small", POLICIES["base4k"], fresh()
        )
        assert isinstance(outcome, CellFailure)
        assert outcome.error == "planning"
        assert planner._runner.failures == []
        assert planner.cells == [
            ("bfs", "test-small", POLICIES["base4k"], fresh())
        ]


class TestPermutationCache:
    def test_single_ordering_invocation_across_weight_variants(
        self, monkeypatch
    ):
        """Reorder permutations depend only on graph structure, so the
        weighted (SSSP) and unweighted graph variants of a dataset must
        share one ``ORDERINGS[...]`` invocation."""
        calls: list[int] = []
        original = ORDERINGS["dbg"]

        def counting(graph):
            calls.append(1)
            return original(graph)

        monkeypatch.setitem(ORDERINGS, "dbg", counting)
        runner = ExperimentRunner()
        unweighted, _ = runner._prepared_graph(
            "test-small", "dbg", weighted=False
        )
        weighted, _ = runner._prepared_graph(
            "test-small", "dbg", weighted=True
        )
        assert len(calls) == 1
        assert unweighted.num_edges == weighted.num_edges

    def test_clear_cache_drops_permutations(self, monkeypatch):
        calls: list[int] = []
        original = ORDERINGS["dbg"]

        def counting(graph):
            calls.append(1)
            return original(graph)

        monkeypatch.setitem(ORDERINGS, "dbg", counting)
        runner = ExperimentRunner()
        runner._prepared_graph("test-small", "dbg", weighted=False)
        runner.clear_cache()
        runner._prepared_graph("test-small", "dbg", weighted=False)
        assert len(calls) == 2
