"""Determinism guarantees.

Every simulated cell must be bit-identical across fresh processes-worth
of state: the paper's artifact averages 3 runs because hardware is
noisy; the simulator's claim is that one run IS the result.  These tests
catch hidden randomness (unseeded RNGs, set/dict iteration order leaking
into allocation decisions).
"""

import numpy as np

from repro.config import tiny
from repro.experiments.harness import ExperimentRunner
from repro.experiments.policies import POLICIES, selective_policy
from repro.experiments.scenarios import constrained, fragmented, fresh
from repro.graph.datasets import clear_dataset_cache


def run_cell_fresh(policy, scenario):
    clear_dataset_cache()
    runner = ExperimentRunner(
        config=tiny(), datasets=("test-small",), pagerank_iterations=1
    )
    return runner.run_cell("bfs", "test-small", policy, scenario)


class TestCellDeterminism:
    def test_fresh_cell_identical(self):
        a = run_cell_fresh(POLICIES["thp"], fresh())
        b = run_cell_fresh(POLICIES["thp"], fresh())
        assert a.kernel_cycles == b.kernel_cycles
        assert a.init_cycles == b.init_cycles
        assert np.array_equal(a.translation.walks, b.translation.walks)

    def test_pressured_cell_identical(self):
        a = run_cell_fresh(POLICIES["thp"], constrained(0.25))
        b = run_cell_fresh(POLICIES["thp"], constrained(0.25))
        assert a.kernel_cycles == b.kernel_cycles
        assert a.huge_bytes == b.huge_bytes

    def test_fragmented_selective_identical(self):
        policy = selective_policy(0.5, reorder="dbg")
        a = run_cell_fresh(policy, fragmented(0.5, 1.0))
        b = run_cell_fresh(policy, fragmented(0.5, 1.0))
        assert a.kernel_cycles == b.kernel_cycles
        assert a.huge_fraction_per_array == b.huge_fraction_per_array

    def test_dataset_regeneration_identical(self):
        from repro.graph.datasets import load_dataset

        g1 = load_dataset("test-small").graph
        clear_dataset_cache()
        g2 = load_dataset("test-small").graph
        assert np.array_equal(g1.indptr, g2.indptr)
        assert np.array_equal(g1.indices, g2.indices)
