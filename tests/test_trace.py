"""Unit tests for access streams, merging and trace compression."""

import numpy as np
import pytest

from repro.tlb.trace import (
    AccessStream,
    compress_trace,
    merge_streams,
)


class TestAccessStream:
    def test_length_check(self):
        with pytest.raises(ValueError):
            AccessStream(
                np.zeros(2, dtype=np.uint8), np.zeros(3, dtype=np.int64)
            )

    def test_concatenate(self):
        a = AccessStream(
            np.array([0], dtype=np.uint8), np.array([1], dtype=np.int64)
        )
        b = AccessStream(
            np.array([1], dtype=np.uint8), np.array([2], dtype=np.int64)
        )
        c = AccessStream.concatenate([a, b])
        assert c.array_ids.tolist() == [0, 1]
        assert c.indices.tolist() == [1, 2]

    def test_concatenate_empty(self):
        assert len(AccessStream.concatenate([])) == 0


class TestMergeStreams:
    def test_interleaves_by_position(self):
        edges = (
            np.array([0.0, 2.0]),
            np.array([1, 1], dtype=np.uint8),
            np.array([10, 11], dtype=np.int64),
        )
        props = (
            np.array([1.0, 3.0]),
            np.array([3, 3], dtype=np.uint8),
            np.array([20, 21], dtype=np.int64),
        )
        vertex = (
            np.array([-0.5]),
            np.array([0], dtype=np.uint8),
            np.array([5], dtype=np.int64),
        )
        merged = merge_streams([edges, props, vertex])
        assert merged.array_ids.tolist() == [0, 1, 3, 1, 3]
        assert merged.indices.tolist() == [5, 10, 20, 11, 21]

    def test_stable_on_ties(self):
        a = (
            np.array([0.0]),
            np.array([0], dtype=np.uint8),
            np.array([1], dtype=np.int64),
        )
        b = (
            np.array([0.0]),
            np.array([1], dtype=np.uint8),
            np.array([2], dtype=np.int64),
        )
        merged = merge_streams([a, b])
        assert merged.array_ids.tolist() == [0, 1]


class TestCompression:
    def test_runs_collapse(self):
        keys = np.array([4, 4, 4, 6, 4], dtype=np.int64)
        aids = np.zeros(5, dtype=np.uint8)
        trace = compress_trace(keys, aids)
        assert trace.keys.tolist() == [4, 6, 4]
        assert trace.counts.tolist() == [3, 1, 1]
        assert trace.total_accesses == 5

    def test_array_id_change_breaks_run(self):
        keys = np.array([4, 4], dtype=np.int64)
        aids = np.array([0, 1], dtype=np.uint8)
        trace = compress_trace(keys, aids)
        assert len(trace) == 2
        assert trace.array_ids.tolist() == [0, 1]

    def test_empty(self):
        trace = compress_trace(
            np.empty(0, dtype=np.int64), np.empty(0, dtype=np.uint8)
        )
        assert len(trace) == 0
        assert trace.total_accesses == 0

    def test_sequential_scan_compresses_hard(self):
        """A sequential 8-byte-element scan compresses by page/element."""
        elements = np.arange(4096, dtype=np.int64)
        keys = (elements * 8) >> 12 << 1
        trace = compress_trace(keys, np.zeros(4096, dtype=np.uint8))
        assert len(trace) == 8  # 4096 elements * 8B / 4KB pages
        assert trace.total_accesses == 4096

    def test_pointer_chase_does_not_compress(self):
        rng = np.random.default_rng(1)
        keys = rng.integers(0, 1000, 512) << 1
        aids = np.zeros(512, dtype=np.uint8)
        trace = compress_trace(keys.astype(np.int64), aids)
        assert len(trace) > 450  # nearly incompressible


class TestLookupView:
    """Lookup coalescing: adjacent same-key runs (possible when arrays
    share a page under huge mappings) collapse to one TLB lookup led by
    the first run's array."""

    def test_coalesces_adjacent_same_key_runs(self):
        keys = np.array([4, 4, 4, 6], dtype=np.int64)
        aids = np.array([0, 1, 1, 0], dtype=np.uint8)
        trace = compress_trace(keys, aids)
        assert len(trace) == 3  # runs: (4,a0) (4,a1) (6,a0)
        lookup_keys, lookup_aids = trace.lookup_view()
        assert lookup_keys.tolist() == [4, 6]
        assert lookup_aids.tolist() == [0, 0]

    def test_all_distinct_keys_share_run_arrays(self):
        keys = np.array([2, 4, 6], dtype=np.int64)
        trace = compress_trace(keys, np.zeros(3, dtype=np.uint8))
        lookup_keys, lookup_aids = trace.lookup_view()
        assert lookup_keys is trace.keys
        assert lookup_aids is trace.array_ids

    def test_empty(self):
        trace = compress_trace(
            np.empty(0, dtype=np.int64), np.empty(0, dtype=np.uint8)
        )
        lookup_keys, lookup_aids = trace.lookup_view()
        assert lookup_keys.size == 0
        assert lookup_aids.size == 0

    def test_view_is_cached(self):
        keys = np.array([4, 4, 6], dtype=np.int64)
        aids = np.array([0, 1, 0], dtype=np.uint8)
        trace = compress_trace(keys, aids)
        first = trace.lookup_view()
        second = trace.lookup_view()
        assert first[0] is second[0]
        assert first[1] is second[1]

    def test_access_counts_unaffected_by_coalescing(self):
        keys = np.array([4, 4, 4, 6], dtype=np.int64)
        aids = np.array([0, 1, 1, 0], dtype=np.uint8)
        trace = compress_trace(keys, aids)
        assert trace.total_accesses == 4
        assert trace.counts.sum() == 4
