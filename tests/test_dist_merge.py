"""Edge-case tests for the partition-tolerant journal merge
(repro.runstate.merge) and its ``repro runs merge`` CLI surface."""

from __future__ import annotations

import dataclasses

import pytest

from repro import cli
from repro.errors import JournalError, MergeConflictError
from repro.runstate.journal import JournalRecord, render_line
from repro.runstate.merge import (
    format_conflict_report,
    merge_journals,
    record_digest,
    write_merged,
)


def _record(
    spec: str,
    status: str = "done",
    seq: int = 1,
    kernel_cycles: int = 100,
    attempts: int = 1,
) -> JournalRecord:
    return JournalRecord(
        seq=seq,
        spec=spec,
        status=status,
        cell={"workload": "bfs", "dataset": "test-small",
              "policy": "thp", "scenario": "fresh"},
        attempts=attempts,
        kernel_cycles=kernel_cycles,
        payload={"kernel_cycles": kernel_cycles},
    )


def _write_shard(path, records) -> str:
    with open(path, "w", encoding="utf-8") as handle:
        for record in records:
            handle.write(render_line(record) + "\n")
    return str(path)


class TestMergeJournals:
    def test_empty_shard_merges_to_empty_output(self, tmp_path):
        empty = tmp_path / "empty.jsonl"
        empty.touch()
        report = merge_journals([str(empty)])
        assert report.text == ""
        assert report.kept == 0
        assert report.shards[0].records == 0

    def test_missing_shard_counts_as_empty(self, tmp_path):
        shard = _write_shard(tmp_path / "a.jsonl", [_record("s1")])
        report = merge_journals(
            [shard, str(tmp_path / "never-written.jsonl")]
        )
        assert report.kept == 1
        assert len(report.shards) == 2

    def test_directory_shard_is_an_error(self, tmp_path):
        with pytest.raises(JournalError):
            merge_journals([str(tmp_path)])

    def test_no_shards_is_an_error(self):
        with pytest.raises(JournalError):
            merge_journals([])

    def test_duplicate_identical_records_dedupe(self, tmp_path):
        record = _record("s1")
        a = _write_shard(tmp_path / "a.jsonl", [record])
        b = _write_shard(
            tmp_path / "b.jsonl",
            [dataclasses.replace(record, seq=7)],  # seq is shard-local
        )
        report = merge_journals([a, b])
        assert report.kept == 1
        assert report.duplicates == 1
        assert report.text.count("\n") == 1

    def test_non_final_records_are_dropped(self, tmp_path):
        shard = _write_shard(
            tmp_path / "a.jsonl",
            [
                _record("s1", status="running"),
                _record("s2", status="failed", seq=2),
                _record("s1", seq=3),
            ],
        )
        report = merge_journals([shard])
        assert report.kept == 1
        assert report.dropped == 2

    def test_torn_trailing_record_is_counted_not_fatal(self, tmp_path):
        path = tmp_path / "torn.jsonl"
        _write_shard(path, [_record("s1"), _record("s2", seq=2)])
        with open(path, "a", encoding="utf-8") as handle:
            line = render_line(_record("s3", seq=3))
            handle.write(line[: len(line) // 2])  # SIGKILL mid-append
        report = merge_journals([str(path)])
        assert report.kept == 2
        assert report.shards[0].torn == 1

    def test_output_is_order_independent_and_renumbered(self, tmp_path):
        a = _write_shard(
            tmp_path / "a.jsonl", [_record("zzz", seq=41)]
        )
        b = _write_shard(
            tmp_path / "b.jsonl", [_record("aaa", seq=99)]
        )
        forward = merge_journals([a, b])
        backward = merge_journals([b, a])
        assert forward.text == backward.text
        lines = forward.text.splitlines()
        assert '"seq":1' in lines[0] and '"spec":"aaa"' in lines[0]
        assert '"seq":2' in lines[1] and '"spec":"zzz"' in lines[1]

    def test_conflicting_fingerprint_refuses_with_sources(self, tmp_path):
        a = _write_shard(tmp_path / "a.jsonl", [_record("s1")])
        b = _write_shard(
            tmp_path / "b.jsonl", [_record("s1", kernel_cycles=101)]
        )
        with pytest.raises(MergeConflictError) as excinfo:
            merge_journals([a, b])
        (conflict,) = excinfo.value.conflicts
        assert conflict["spec"] == "s1"
        sources = {variant["source"] for variant in conflict["variants"]}
        assert sources == {a, b}
        report = format_conflict_report(excinfo.value)
        assert "s1" in report
        assert "merge refused" in report

    def test_record_digest_ignores_seq_only(self):
        base = _record("s1")
        assert record_digest(base) == record_digest(
            dataclasses.replace(base, seq=99)
        )
        assert record_digest(base) != record_digest(
            dataclasses.replace(base, attempts=2)
        )

    def test_write_merged_is_atomic_and_reports(self, tmp_path):
        shard = _write_shard(tmp_path / "a.jsonl", [_record("s1")])
        out = tmp_path / "merged.jsonl"
        report = write_merged([shard], str(out))
        assert report.kept == 1
        assert out.read_text() == report.text


class TestRunsMergeCli:
    def test_merge_to_file(self, tmp_path, capsys):
        shard = _write_shard(tmp_path / "a.jsonl", [_record("s1")])
        out = tmp_path / "merged.jsonl"
        rc = cli.main(["runs", "merge", shard, "--out", str(out)])
        assert rc == 0
        assert out.exists()
        assert "kept 1 completed cell(s)" in capsys.readouterr().err

    def test_merge_to_stdout(self, tmp_path, capsys):
        shard = _write_shard(tmp_path / "a.jsonl", [_record("s1")])
        rc = cli.main(["runs", "merge", shard])
        assert rc == 0
        captured = capsys.readouterr()
        assert '"spec":"s1"' in captured.out

    def test_conflict_exits_3_and_writes_nothing(self, tmp_path, capsys):
        a = _write_shard(tmp_path / "a.jsonl", [_record("s1")])
        b = _write_shard(
            tmp_path / "b.jsonl", [_record("s1", kernel_cycles=101)]
        )
        out = tmp_path / "merged.jsonl"
        rc = cli.main(["runs", "merge", a, b, "--out", str(out)])
        assert rc == 3
        assert not out.exists()
        err = capsys.readouterr().err
        assert "merge refused" in err and "s1" in err

    def test_merge_without_shards_is_a_usage_error(self, capsys):
        assert cli.main(["runs", "merge"]) == 2
        assert "at least one journal shard" in capsys.readouterr().err

    def test_journal_flag_is_prepended_to_shards(self, tmp_path, capsys):
        a = _write_shard(tmp_path / "a.jsonl", [_record("s1")])
        b = _write_shard(tmp_path / "b.jsonl", [_record("s2")])
        rc = cli.main(["runs", "merge", b, "--journal", a])
        assert rc == 0
        assert capsys.readouterr().out.count("\n") == 2

    def test_other_actions_still_require_journal(self, capsys):
        assert cli.main(["runs", "list"]) == 2
        assert "requires --journal" in capsys.readouterr().err

    def test_other_actions_reject_positional_shards(self, tmp_path, capsys):
        shard = _write_shard(tmp_path / "a.jsonl", [_record("s1")])
        rc = cli.main(["runs", "list", shard, "--journal", shard])
        assert rc == 2
        assert "no positional shard" in capsys.readouterr().err
