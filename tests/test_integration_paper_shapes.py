"""Integration tests: the paper's qualitative results must hold on the
SCALED profile (DESIGN.md §6).

These are the acceptance tests of the reproduction: each asserts one of
the orderings/crossovers the paper reports, on the real evaluation
machine profile with the kron-s input (the paper's synthetic network).
They are marked ``slow`` (a few seconds each; results are shared through
a module-scoped runner cache).
"""

import pytest

from repro.experiments.harness import ExperimentRunner
from repro.experiments.policies import POLICIES, selective_policy
from repro.experiments.scenarios import (
    constrained,
    fragmented,
    fresh,
    oversubscribed,
)

pytestmark = pytest.mark.slow

WORKLOAD = "bfs"
DATASET = "kron-s"


@pytest.fixture(scope="module")
def runner():
    return ExperimentRunner()


@pytest.fixture(scope="module")
def base_fresh(runner):
    return runner.run_cell(WORKLOAD, DATASET, POLICIES["base4k"], fresh())


@pytest.fixture(scope="module")
def thp_fresh(runner):
    return runner.run_cell(WORKLOAD, DATASET, POLICIES["thp"], fresh())


class TestExpectation1And2_MissRates:
    def test_4k_miss_rates_in_paper_band(self, base_fresh):
        """Paper Fig. 3: 12.6-47.6% DTLB miss at 4KB; most misses walk."""
        assert 0.12 <= base_fresh.dtlb_miss_rate <= 0.55
        assert base_fresh.walk_rate >= 0.5 * base_fresh.dtlb_miss_rate

    def test_thp_roughly_halves_misses_and_kills_walks(
        self, base_fresh, thp_fresh
    ):
        assert thp_fresh.walk_rate < 0.05 * base_fresh.walk_rate + 0.01
        assert thp_fresh.dtlb_miss_rate < base_fresh.dtlb_miss_rate

    def test_thp_speedup_fresh(self, base_fresh, thp_fresh):
        """Unbounded THP gives a significant speedup."""
        assert thp_fresh.speedup_over(base_fresh) > 1.2


class TestExpectation3And4_PressureAndOrder:
    def test_greedy_thp_loses_gain_under_pressure(
        self, runner, base_fresh, thp_fresh
    ):
        scenario = constrained(0.5)
        base = runner.run_cell(
            WORKLOAD, DATASET, POLICIES["base4k"], scenario
        )
        thp = runner.run_cell(WORKLOAD, DATASET, POLICIES["thp"], scenario)
        # Baseline unaffected by pressure.
        assert base.speedup_over(base_fresh) == pytest.approx(1.0, abs=0.05)
        # Greedy THP keeps less than a third of its fresh-boot gain.
        fresh_gain = thp_fresh.speedup_over(base_fresh) - 1.0
        pressured_gain = thp.speedup_over(base) - 1.0
        assert pressured_gain < fresh_gain / 3

    def test_property_first_restores_gain(self, runner, thp_fresh,
                                          base_fresh):
        scenario = constrained(0.5)
        base = runner.run_cell(
            WORKLOAD, DATASET, POLICIES["base4k"], scenario
        )
        opt = runner.run_cell(
            WORKLOAD, DATASET, POLICIES["thp-opt"], scenario
        )
        fresh_gain = thp_fresh.speedup_over(base_fresh) - 1.0
        opt_gain = opt.speedup_over(base) - 1.0
        assert opt_gain > 0.8 * fresh_gain

    def test_property_array_starves_under_natural_order(self, runner):
        thp = runner.run_cell(
            WORKLOAD, DATASET, POLICIES["thp"], constrained(0.5)
        )
        opt = runner.run_cell(
            WORKLOAD, DATASET, POLICIES["thp-opt"], constrained(0.5)
        )
        assert thp.huge_fraction_per_array["property_array"] < 0.2
        assert opt.huge_fraction_per_array["property_array"] > 0.9


class TestExpectation5_Oversubscription:
    def test_order_of_magnitude_collapse(self, runner, base_fresh):
        scenario = oversubscribed(0.5)
        base = runner.run_cell(
            WORKLOAD, DATASET, POLICIES["base4k"], scenario
        )
        thp = runner.run_cell(WORKLOAD, DATASET, POLICIES["thp"], scenario)
        assert base_fresh.kernel_cycles * 8 < base.kernel_cycles
        assert base_fresh.kernel_cycles * 8 < thp.kernel_cycles
        assert base.swap_ins > 0


class TestExpectation6_PropertyArrayDominates:
    def test_property_walk_share(self, base_fresh):
        """Fig. 4: the property array dominates page walks."""
        per = base_fresh.per_array_translation()
        walks = {name: c["walks"] for name, c in per.items()}
        total = sum(walks.values())
        assert walks["property_array"] / total > 0.7

    def test_property_only_nearly_matches_full_thp(
        self, runner, base_fresh, thp_fresh
    ):
        """Fig. 5: madvise on the property array alone achieves most of
        the system-wide THP speedup with a fraction of the huge pages."""
        prop = runner.run_cell(
            WORKLOAD, DATASET, POLICIES["madv-property"], fresh()
        )
        full_gain = thp_fresh.speedup_over(base_fresh) - 1.0
        prop_gain = prop.speedup_over(base_fresh) - 1.0
        assert prop_gain > 0.7 * full_gain
        assert prop.huge_bytes < 0.2 * thp_fresh.huge_bytes
        # Vertex/edge-only THPs help far less.
        edge = runner.run_cell(
            WORKLOAD, DATASET, POLICIES["madv-edge"], fresh()
        )
        assert (edge.speedup_over(base_fresh) - 1.0) < 0.5 * prop_gain


class TestExpectation7_SelectiveThp:
    def test_selective_beats_greedy_under_frag(self, runner):
        scenario = fragmented(0.5)
        base = runner.run_cell(
            WORKLOAD, DATASET, POLICIES["base4k"], scenario
        )
        greedy = runner.run_cell(
            WORKLOAD, DATASET, POLICIES["thp"], scenario
        )
        selective = runner.run_cell(
            WORKLOAD, DATASET, selective_policy(0.2), scenario
        )
        assert selective.speedup_over(base) > greedy.speedup_over(base) + 0.1

    def test_headline_bands(self, runner, base_fresh, thp_fresh):
        """Abstract: speedup over 4K within/near 1.26-1.57x; most of
        unbounded THP; tiny huge-page budget."""
        scenario = fragmented(0.5)
        base = runner.run_cell(
            WORKLOAD, DATASET, POLICIES["base4k"], scenario
        )
        selective = runner.run_cell(
            WORKLOAD, DATASET, selective_policy(0.2), scenario
        )
        speedup = selective.speedup_over(base)
        assert 1.15 <= speedup <= 1.7
        ideal = thp_fresh.speedup_over(base_fresh)
        assert 0.7 <= speedup / ideal <= 1.05
        assert 0.003 <= selective.huge_footprint_fraction <= 0.06

    def test_dbg_saturates_small_s(self, runner):
        """Fig. 11: with DBG, s=20% captures most of s=100%'s gain; the
        original (shuffled) order does not."""
        scenario = fragmented(0.5)
        base = runner.run_cell(
            WORKLOAD, DATASET, POLICIES["base4k"], scenario
        )

        def gain(policy):
            run = runner.run_cell(WORKLOAD, DATASET, policy, scenario)
            return run.speedup_over(base) - 1.0

        dbg_small = gain(selective_policy(0.2, reorder="dbg"))
        dbg_full = gain(selective_policy(1.0, reorder="dbg"))
        orig_small = gain(selective_policy(0.2, reorder="original"))
        orig_full = gain(selective_policy(1.0, reorder="original"))
        assert dbg_small > 0.75 * dbg_full
        assert orig_small < 0.5 * orig_full
