"""Equivalence properties for the vectorized batch translation engine.

The batch engine's only contract is *bit-identical counts* to the exact
per-lookup simulator (``TranslationHierarchy`` / ``access_one``) on any
trace sequence — including carried TLB state across ``simulate`` calls,
flushes, fused vs split L1 geometries, and every addressing mode of the
closed-sets fast path (direct, rebased for large-base keys, wide-direct).

Seeded-random streams drive both engines through identical segment
sequences; a spy on ``_closed_l1_decide`` pins down *which* decision
procedure actually ran, so the fast-path tests cannot silently pass via
the chunked fallback.
"""

import numpy as np
import pytest

from repro.config import TlbConfig, TlbGeometry
from repro.tlb.engine import (
    TLB_ENGINES,
    BatchTranslationHierarchy,
    batch_engine_matches,
    make_hierarchy,
)
from repro.tlb.hierarchy import TranslationHierarchy, TranslationStats
from repro.tlb.trace import compress_trace

GEOMETRIES = {
    # Direct-mapped everywhere: every re-reference of a conflicting key
    # misses, the harshest eviction pattern.
    "ways-1": TlbConfig(
        l1_base=TlbGeometry(entries=8, ways=1),
        l1_huge=TlbGeometry(entries=4, ways=1),
        l2=TlbGeometry(entries=16, ways=1),
    ),
    # Fully associative: one set, pure LRU.
    "full-assoc": TlbConfig(
        l1_base=TlbGeometry(entries=4, ways=4),
        l1_huge=TlbGeometry(entries=4, ways=4),
        l2=TlbGeometry(entries=8, ways=8),
    ),
    # Non-power-of-two ways (sets stay a power of two), split L1.
    "split-12way": TlbConfig(
        l1_base=TlbGeometry(entries=16, ways=4),
        l1_huge=TlbGeometry(entries=8, ways=2),
        l2=TlbGeometry(entries=48, ways=12),
    ),
    # Identical L1 geometries -> the engine fuses both size classes
    # into one structure pass.
    "fused": TlbConfig(
        l1_base=TlbGeometry(entries=8, ways=4),
        l1_huge=TlbGeometry(entries=8, ways=4),
        l2=TlbGeometry(entries=32, ways=4),
    ),
}


def _run_both(config, segments, flush_after=frozenset()):
    """Drive exact and batch engines through identical segments;
    assert every stats array matches exactly."""
    exact = TranslationHierarchy(config)
    batch = BatchTranslationHierarchy(config)
    exact_stats = TranslationStats()
    batch_stats = TranslationStats()
    for i, (keys, aids) in enumerate(segments):
        trace = compress_trace(keys, aids)
        exact.simulate(trace, exact_stats)
        batch.simulate(trace, batch_stats)
        if i in flush_after:
            exact.flush()
            batch.flush()
    np.testing.assert_array_equal(exact_stats.accesses, batch_stats.accesses)
    np.testing.assert_array_equal(
        exact_stats.l1_misses, batch_stats.l1_misses
    )
    np.testing.assert_array_equal(exact_stats.walks, batch_stats.walks)
    return exact_stats


def _random_segments(
    rng, num_segments, seg_size, num_pages, base=0, huge_fraction=0.3
):
    segments = []
    for _ in range(num_segments):
        n = int(rng.integers(1, seg_size + 1))
        pages = rng.integers(0, num_pages, size=n) + base
        huge = rng.random(n) < huge_fraction
        keys = ((pages << 1) | huge).astype(np.int64)
        aids = rng.integers(0, 5, size=n).astype(np.uint8)
        segments.append((keys, aids))
    return segments


@pytest.fixture
def fast_path_spy(monkeypatch):
    """Record whether each simulate() call took the closed-sets fast
    path (decision returned non-None) or fell through to chunks."""
    fired = []
    original = BatchTranslationHierarchy._closed_l1_decide

    def spy(self, lookup_keys, kmax):
        result = original(self, lookup_keys, kmax)
        fired.append(result is not None)
        return result

    monkeypatch.setattr(BatchTranslationHierarchy, "_closed_l1_decide", spy)
    return fired


@pytest.mark.parametrize("name", sorted(GEOMETRIES))
@pytest.mark.parametrize("seed", [0, 1, 2])
def test_random_streams_match_exact(name, seed):
    """Carried state + random flushes across many segments."""
    rng = np.random.default_rng(1000 * seed + hash(name) % 997)
    segments = _random_segments(rng, num_segments=6, seg_size=800, num_pages=64)
    flush_after = {int(i) for i in rng.integers(0, 6, size=2)}
    _run_both(GEOMETRIES[name], segments, flush_after)


@pytest.mark.parametrize("name", sorted(GEOMETRIES))
def test_multi_chunk_stream_matches_exact(name):
    """A single segment longer than the engine's chunk size exercises
    warm-state carry between chunks inside one simulate() call."""
    from repro.tlb.engine import _CHUNK

    rng = np.random.default_rng(7)
    n = _CHUNK + 1234
    pages = rng.integers(0, 256, size=n)
    keys = ((pages << 1) | (rng.random(n) < 0.25)).astype(np.int64)
    aids = rng.integers(0, 5, size=n).astype(np.uint8)
    _run_both(GEOMETRIES[name], [(keys, aids)])


@pytest.mark.parametrize("name", ["fused", "split-12way", "ways-1"])
def test_closed_fast_path_with_carried_state(name, fast_path_spy):
    """Small key universes stay closed: the fast path must fire, and a
    carried key recurring in a later segment must not be re-counted as
    a miss (regression guard for the first-occurrence scatter order)."""
    config = GEOMETRIES[name]
    rng = np.random.default_rng(11)
    # Few enough distinct keys that every L1 set holds its share.
    universe = np.array([0, 2, 4, 6, 1, 3], dtype=np.int64)
    segments = []
    for _ in range(5):
        n = int(rng.integers(50, 200))
        segments.append(
            (
                universe[rng.integers(0, universe.size, size=n)],
                rng.integers(0, 5, size=n).astype(np.uint8),
            )
        )
    _run_both(config, segments)
    assert any(fast_path_spy), "closed stream never took the fast path"


def test_closed_fast_path_rebased_large_base(fast_path_spy):
    """Keys clustered near 2**30 (a 64GB node's VPNs): the fast path
    must rebase rather than decline, and still match exactly."""
    rng = np.random.default_rng(13)
    base = 1 << 30
    segments = _random_segments(
        rng, num_segments=4, seg_size=300, num_pages=4, base=base
    )
    _run_both(GEOMETRIES["fused"], segments)
    assert any(fast_path_spy), "rebased closed stream never fast-pathed"


def test_closed_fast_path_wide_direct(fast_path_spy):
    """Distinct keys spread over more than 2**16 but below 2**24: the
    span is too wide to rebase into a 16-bit table, so the wide-direct
    table must pick it up.  The stride keeps every key in one L1 set,
    so the universe must fit within a single set's ways."""
    rng = np.random.default_rng(17)
    universe = (np.arange(4, dtype=np.int64) * (1 << 17)) << 1
    n = 500
    keys = universe[rng.integers(0, universe.size, size=n)]
    aids = rng.integers(0, 5, size=n).astype(np.uint8)
    _run_both(GEOMETRIES["fused"], [(keys, aids)])
    assert any(fast_path_spy), "wide-span closed stream never fast-pathed"


def test_open_stream_declines_fast_path(fast_path_spy):
    """A stream with more conflicting keys than L1 capacity must fall
    through to the chunked engine — and still match."""
    rng = np.random.default_rng(19)
    segments = _random_segments(
        rng, num_segments=2, seg_size=2000, num_pages=512
    )
    _run_both(GEOMETRIES["ways-1"], segments)
    assert not all(fast_path_spy), "over-capacity stream fast-pathed"


def test_non_power_of_two_occupancy():
    """Odd-sized streams and partial sets (the non-power-of-two
    occupancy case) across every geometry."""
    rng = np.random.default_rng(23)
    for config in GEOMETRIES.values():
        for n in (1, 3, 7, 129, 1021):
            pages = rng.integers(0, 48, size=n)
            keys = ((pages << 1) | (rng.random(n) < 0.5)).astype(np.int64)
            aids = rng.integers(0, 5, size=n).astype(np.uint8)
            _run_both(config, [(keys, aids)])


def test_make_hierarchy_engine_selection():
    config = GEOMETRIES["split-12way"]
    assert isinstance(make_hierarchy("exact", config), TranslationHierarchy)
    batch = make_hierarchy("batch", config)
    assert isinstance(batch, BatchTranslationHierarchy)
    assert batch.engine == "batch"
    assert make_hierarchy("exact", config).engine == "exact"
    # auto = batch after the one-time per-geometry self-check.
    assert batch_engine_matches(config)
    assert isinstance(
        make_hierarchy("auto", config), BatchTranslationHierarchy
    )
    with pytest.raises(ValueError):
        make_hierarchy("per-lookup", config)
    assert set(TLB_ENGINES) == {"exact", "batch", "auto"}
