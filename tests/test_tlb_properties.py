"""Property-based tests for the TLB structures (hypothesis).

The key invariant: a set-associative LRU structure with one set is an
exact LRU cache, and the batch simulation loop must agree with the
reference single-access path on arbitrary traces.
"""

from collections import OrderedDict

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import TlbConfig, TlbGeometry
from repro.tlb.hierarchy import TranslationHierarchy, TranslationStats
from repro.tlb.tlb import SetAssociativeTlb
from repro.tlb.trace import compress_trace

keys_strategy = st.lists(
    st.integers(min_value=0, max_value=63), min_size=1, max_size=300
)


class _LruOracle:
    """Reference LRU cache built on OrderedDict."""

    def __init__(self, capacity: int) -> None:
        self.capacity = capacity
        self.data: OrderedDict[int, None] = OrderedDict()

    def access(self, key: int) -> bool:
        if key in self.data:
            self.data.move_to_end(key, last=False)
            return True
        self.data[key] = None
        self.data.move_to_end(key, last=False)
        if len(self.data) > self.capacity:
            self.data.popitem(last=True)
        return False


@given(keys_strategy)
@settings(max_examples=200, deadline=None)
def test_fully_associative_matches_lru_oracle(page_ids):
    """entries == ways => exact LRU behaviour."""
    tlb = SetAssociativeTlb(TlbGeometry(entries=4, ways=4))
    oracle = _LruOracle(4)
    for page in page_ids:
        key = page << 1
        assert tlb.access(key) == oracle.access(key)


@given(keys_strategy)
@settings(max_examples=200, deadline=None)
def test_set_associative_is_per_set_lru(page_ids):
    """Each set behaves as an independent LRU of `ways` entries."""
    geometry = TlbGeometry(entries=8, ways=2)
    tlb = SetAssociativeTlb(geometry)
    oracles = [_LruOracle(2) for _ in range(geometry.sets)]
    for page in page_ids:
        key = page << 1
        expected = oracles[tlb.set_index(key)].access(key)
        assert tlb.access(key) == expected


@given(keys_strategy)
@settings(max_examples=100, deadline=None)
def test_occupancy_never_exceeds_entries(page_ids):
    tlb = SetAssociativeTlb(TlbGeometry(entries=4, ways=2))
    for page in page_ids:
        tlb.access(page << 1)
        assert tlb.occupancy <= 4


@given(
    st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=31),  # page
            st.booleans(),  # huge?
            st.integers(min_value=0, max_value=4),  # array id
        ),
        min_size=1,
        max_size=300,
    )
)
@settings(max_examples=100, deadline=None)
def test_batch_simulation_matches_reference_path(accesses):
    """simulate() must agree exactly with access_one() on any trace."""
    config = TlbConfig(
        l1_base=TlbGeometry(entries=2, ways=2),
        l1_huge=TlbGeometry(entries=2, ways=1),
        l2=TlbGeometry(entries=8, ways=4),
    )
    keys = np.array(
        [(page << 1) | int(huge) for page, huge, _ in accesses],
        dtype=np.int64,
    )
    aids = np.array([aid for _, _, aid in accesses], dtype=np.uint8)

    ref = TranslationHierarchy(config)
    outcomes = [ref.access_one(int(k)) for k in keys]

    sim = TranslationHierarchy(config)
    stats = TranslationStats()
    sim.simulate(compress_trace(keys, aids), stats)

    assert stats.total_accesses == len(accesses)
    assert stats.total_l1_misses == sum(1 for o in outcomes if o != "l1")
    assert stats.total_walks == sum(1 for o in outcomes if o == "walk")
    # Attribution sums must match totals.
    assert int(stats.accesses.sum()) == stats.total_accesses


@given(keys_strategy)
@settings(max_examples=100, deadline=None)
def test_walks_never_exceed_l1_misses(page_ids):
    config = TlbConfig(
        l1_base=TlbGeometry(entries=2, ways=2),
        l1_huge=TlbGeometry(entries=2, ways=2),
        l2=TlbGeometry(entries=4, ways=4),
    )
    h = TranslationHierarchy(config)
    stats = TranslationStats()
    keys = np.array([p << 1 for p in page_ids], dtype=np.int64)
    h.simulate(
        compress_trace(keys, np.zeros(keys.size, dtype=np.uint8)), stats
    )
    assert stats.total_walks <= stats.total_l1_misses <= stats.total_accesses
