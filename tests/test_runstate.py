"""Tests for repro.runstate: atomic writes, the run journal, spec
fingerprints, the cell watchdog, and the `repro runs` CLI."""

from __future__ import annotations

import json
import os

import pytest

from repro.cli import main as cli_main
from repro.config import tiny
from repro.errors import InjectedFaultError, JournalError, WatchdogExpiredError
from repro.experiments.harness import CellFailure, ExperimentRunner
from repro.experiments.policies import POLICIES
from repro.experiments.scenarios import SCENARIOS, fresh
from repro.faults import FaultPlan
from repro.graph.datasets import load_dataset
from repro.machine.machine import Machine
from repro.mem.thp import ThpPolicy
from repro.runstate import (
    CellWatchdog,
    RunJournal,
    append_durable_line,
    atomic_write_text,
    decode_result,
    encode_result,
    integrity_hash,
    spec_fingerprint,
)
from repro.runstate.journal import JournalRecord, _parse_line, _render_line
from repro.workloads.registry import create_workload

BFS = "bfs"
SMALL = "test-small"
THP = POLICIES["thp"]
FRESH = SCENARIOS["fresh"]


def small_runner(**kwargs) -> ExperimentRunner:
    return ExperimentRunner(**kwargs)


# ----------------------------------------------------------------------
# Atomic write helpers
# ----------------------------------------------------------------------


class TestAtomicHelpers:
    def test_atomic_write_replaces_whole_file(self, tmp_path):
        path = str(tmp_path / "out.txt")
        atomic_write_text(path, "first\n")
        atomic_write_text(path, "second\n")
        with open(path, "r", encoding="utf-8") as handle:
            assert handle.read() == "second\n"
        assert not [
            name for name in os.listdir(tmp_path) if name != "out.txt"
        ], "temp files must not survive"

    def test_atomic_write_crash_leaves_previous_version(self, tmp_path):
        path = str(tmp_path / "out.txt")
        atomic_write_text(path, "stable\n")
        plan = FaultPlan.parse("journal.write:1.0")
        with pytest.raises(InjectedFaultError):
            atomic_write_text(path, "torn\n", injector=plan.make_injector())
        with open(path, "r", encoding="utf-8") as handle:
            assert handle.read() == "stable\n"

    def test_append_durable_line_appends(self, tmp_path):
        path = str(tmp_path / "log.jsonl")
        append_durable_line(path, "one")
        append_durable_line(path, "two")
        with open(path, "r", encoding="utf-8") as handle:
            assert handle.read() == "one\ntwo\n"

    def test_append_rejects_embedded_newline(self, tmp_path):
        with pytest.raises(ValueError):
            append_durable_line(str(tmp_path / "log"), "a\nb")

    def test_append_crash_tears_the_line(self, tmp_path):
        path = str(tmp_path / "log.jsonl")
        append_durable_line(path, "intact-record")
        plan = FaultPlan.parse("journal.write:1.0")
        with pytest.raises(InjectedFaultError):
            append_durable_line(path, "torn-record", injector=plan.make_injector())
        with open(path, "r", encoding="utf-8") as handle:
            text = handle.read()
        assert text.startswith("intact-record\n")
        # The torn half-line is present but incomplete and unterminated.
        tail = text[len("intact-record\n"):]
        assert tail and "torn-record" not in tail and not tail.endswith("\n")


# ----------------------------------------------------------------------
# Journal records and integrity
# ----------------------------------------------------------------------


class TestJournalRecords:
    def test_render_parse_round_trip(self):
        record = JournalRecord(
            seq=3, spec="abc", status="done",
            cell={"workload": "bfs"}, attempts=2, kernel_cycles=123,
            payload={"kind": "metrics"},
        )
        parsed = _parse_line(_render_line(record))
        assert parsed == record

    def test_bad_json_is_torn(self):
        assert _parse_line('{"seq": 1, "spec"') is None

    def test_integrity_mismatch_is_torn(self):
        record = JournalRecord(seq=1, spec="abc", status="done", cell={})
        line = _render_line(record).replace('"spec":"abc"', '"spec":"abd"')
        assert _parse_line(line) is None

    def test_unknown_status_is_torn(self):
        payload = JournalRecord(seq=1, spec="a", status="paused", cell={}).to_dict()
        payload["integrity"] = integrity_hash(payload)
        assert _parse_line(json.dumps(payload)) is None


class TestRunJournal:
    def test_last_valid_record_wins(self, tmp_path):
        path = str(tmp_path / "j.jsonl")
        journal = RunJournal(path)
        journal.begin("spec1", {"workload": "bfs"})
        assert journal.lookup("spec1").status == "running"
        failure = CellFailure(
            workload="bfs", dataset=SMALL, policy="thp",
            scenario="fresh", error="OutOfMemoryError", message="oom",
        )
        journal.record_result("spec1", {"workload": "bfs"}, failure)
        reloaded = RunJournal(path)
        assert reloaded.lookup("spec1").status == "failed"
        assert reloaded.result("spec1") is None  # failed => re-run
        assert reloaded.counts() == {"running": 0, "done": 0, "failed": 1}

    def test_torn_line_skipped_and_counted(self, tmp_path):
        path = str(tmp_path / "j.jsonl")
        journal = RunJournal(path)
        journal.begin("spec1", {})
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"seq": 2, "spec": "spec2", "stat')  # torn append
        reloaded = RunJournal(path)
        assert reloaded.torn_records == 1
        assert reloaded.lookup("spec2") is None
        # Appending after a torn tail must not concatenate onto it.
        reloaded.begin("spec3", {})
        final = RunJournal(path)
        assert final.lookup("spec3").status == "running"
        assert final.torn_records == 1

    def test_journal_path_is_directory_raises(self, tmp_path):
        with pytest.raises(JournalError):
            RunJournal(str(tmp_path))

    def test_gc_keeps_only_latest_done(self, tmp_path):
        path = str(tmp_path / "j.jsonl")
        journal = RunJournal(path)
        runner = small_runner()
        metrics = runner.run_cell(BFS, SMALL, THP, FRESH)
        journal.begin("s1", {})
        journal.record_result("s1", {}, metrics)
        journal.begin("s2", {})  # in-flight: dropped by gc
        kept, dropped = journal.gc()
        assert (kept, dropped) == (1, 2)
        reloaded = RunJournal(path)
        assert len(reloaded) == 1
        assert reloaded.lookup("s1").status == "done"


# ----------------------------------------------------------------------
# Result payload round-trip
# ----------------------------------------------------------------------


class TestResultRoundTrip:
    def test_metrics_round_trip_full_fidelity(self):
        runner = small_runner()
        metrics = runner.run_cell(BFS, SMALL, THP, FRESH)
        clone = decode_result(json.loads(json.dumps(encode_result(metrics))))
        assert clone.summary() == metrics.summary()
        assert clone.kernel_cycles == metrics.kernel_cycles
        assert clone.array_names == metrics.array_names
        assert clone.context == metrics.context
        assert clone.huge_fraction_per_array == metrics.huge_fraction_per_array

    def test_failure_round_trip(self):
        runner = small_runner(
            fault_plan=FaultPlan.parse("staging:1.0"), max_retries=0
        )
        failure = runner.run_cell(BFS, SMALL, THP, FRESH)
        assert isinstance(failure, CellFailure)
        clone = decode_result(json.loads(json.dumps(encode_result(failure))))
        assert clone == failure
        assert clone.label == failure.label

    def test_unknown_kind_raises(self):
        with pytest.raises(JournalError):
            decode_result({"kind": "mystery"})


# ----------------------------------------------------------------------
# Spec fingerprints
# ----------------------------------------------------------------------


class TestSpecFingerprint:
    def fingerprint(self, **overrides) -> str:
        kwargs = dict(
            workload=BFS, dataset=SMALL, policy=THP, scenario=FRESH,
            pagerank_iterations=3, profile_name="scaled",
            fault_plan=None, max_retries=2, cell_budget=None,
            cell_cycles=None,
        )
        kwargs.update(overrides)
        return spec_fingerprint(**kwargs)

    def test_stable_across_calls(self):
        assert self.fingerprint() == self.fingerprint()

    def test_spec_changes_change_it(self):
        base = self.fingerprint()
        assert self.fingerprint(workload="pagerank") != base
        assert self.fingerprint(scenario=SCENARIOS["high-pressure"]) != base
        assert self.fingerprint(cell_cycles=10**9) != base
        assert self.fingerprint(max_retries=3) != base

    def test_simulation_faults_change_it(self):
        assert self.fingerprint(
            fault_plan=FaultPlan.parse("compaction:1.0")
        ) != self.fingerprint()

    def test_journal_faults_do_not_change_it(self):
        # A sweep crashed by an armed journal.write fault, resumed
        # without it, must still recognize its completed cells.
        assert self.fingerprint(
            fault_plan=FaultPlan.parse("journal.write:after=3")
        ) == self.fingerprint()

    def test_equivalent_scenario_object_matches(self):
        assert self.fingerprint(scenario=fresh()) == self.fingerprint()

    def test_clear_cache_does_not_invalidate_journal(self, tmp_path):
        """Spec hashes derive from the cell spec, not object identity:
        after clear_cache() a resumed cell still journal-hits."""
        path = str(tmp_path / "j.jsonl")
        runner = small_runner(journal=RunJournal(path), resume=True)
        simulations = []
        original = runner._simulate_cell

        def counting(*args, **kwargs):
            simulations.append(1)
            return original(*args, **kwargs)

        runner._simulate_cell = counting
        first = runner.run_cell(BFS, SMALL, THP, FRESH)
        assert len(simulations) == 1
        runner.clear_cache()
        second = runner.run_cell(BFS, SMALL, THP, FRESH)
        assert len(simulations) == 1, "journal hit must skip simulation"
        assert second.summary() == first.summary()


# ----------------------------------------------------------------------
# Watchdog
# ----------------------------------------------------------------------


class TestCellWatchdog:
    def test_validation(self):
        with pytest.raises(ValueError):
            CellWatchdog(max_cycles=0)
        with pytest.raises(ValueError):
            CellWatchdog(deadline_seconds=-1.0)
        assert not CellWatchdog().armed
        assert CellWatchdog(max_cycles=1).armed

    def test_cycle_budget_check(self):
        watchdog = CellWatchdog(max_cycles=100)
        watchdog.check(100)  # at the budget: fine
        with pytest.raises(WatchdogExpiredError, match="cycles"):
            watchdog.check(101)

    def test_deadline_check(self):
        watchdog = CellWatchdog(deadline_seconds=0.0)
        watchdog.start()
        with pytest.raises(WatchdogExpiredError, match="wall-clock"):
            watchdog.check(0)

    def test_machine_run_enforces_cycle_budget(self):
        data = load_dataset(SMALL)
        machine = Machine(tiny(), ThpPolicy.always())
        machine.finish_setup()
        with pytest.raises(WatchdogExpiredError):
            machine.run(
                create_workload(BFS, data.graph),
                dataset=data.name,
                watchdog=CellWatchdog(max_cycles=1_000),
            )

    def test_harness_absorbs_watchdog_as_failure(self):
        runner = small_runner(cell_cycles=1_000)
        result = runner.run_cell(BFS, SMALL, THP, FRESH)
        assert isinstance(result, CellFailure)
        assert result.label == "FAILED(watchdog)"
        assert result.attempts == 1, "watchdog expiry must not be retried"
        assert runner.failures == [result]
        # The sweep continues: an unbounded runner still works after.
        ok = small_runner().run_cell(BFS, SMALL, THP, FRESH)
        assert ok.ok

    def test_generous_budget_changes_nothing(self):
        bounded = small_runner(cell_cycles=10**15)
        unbounded = small_runner()
        assert (
            bounded.run_cell(BFS, SMALL, THP, FRESH).summary()
            == unbounded.run_cell(BFS, SMALL, THP, FRESH).summary()
        )

    def test_watchdog_failure_recorded_in_journal(self, tmp_path):
        path = str(tmp_path / "j.jsonl")
        runner = small_runner(
            journal=RunJournal(path), cell_cycles=1_000
        )
        runner.run_cell(BFS, SMALL, THP, FRESH)
        record = next(RunJournal(path).records())
        assert record.status == "failed"
        assert record.payload["error"] == "watchdog"


# ----------------------------------------------------------------------
# The `repro runs` CLI
# ----------------------------------------------------------------------


class TestRunsCli:
    @pytest.fixture()
    def journal_path(self, tmp_path) -> str:
        path = str(tmp_path / "run.jsonl")
        assert cli_main([
            "run", "--workload", BFS, "--dataset", SMALL,
            "--policy", "thp", "--journal", path,
        ]) == 0
        return path

    def test_list(self, journal_path, capsys):
        assert cli_main(["runs", "list", "--journal", journal_path]) == 0
        out = capsys.readouterr().out
        assert "done=1" in out and f"{BFS}/{SMALL}/thp/fresh" in out

    def test_show(self, journal_path, capsys):
        assert cli_main(["runs", "show", "--journal", journal_path]) == 0
        shown = json.loads(capsys.readouterr().out)
        assert shown["status"] == "done"
        assert shown["payload"]["kind"] == "metrics"

    def test_show_unknown_spec_errors(self, journal_path, capsys):
        assert cli_main([
            "runs", "show", "--journal", journal_path, "--spec", "nope",
        ]) == 2

    def test_gc(self, journal_path, capsys):
        assert cli_main(["runs", "gc", "--journal", journal_path]) == 0
        out = capsys.readouterr().out
        assert "kept 1" in out
        assert len(RunJournal(journal_path)) == 1

    def test_resume_requires_journal(self, capsys):
        assert cli_main([
            "run", "--workload", BFS, "--dataset", SMALL, "--resume",
        ]) == 2
