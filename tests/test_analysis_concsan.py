"""Tests for the ConcSan rules (REP009/REP010/REP011).

Each rule gets positive, negative, and suppression fixtures, plus an
*interprocedural* fixture that only resolves through the call graph —
the point of the second-generation analyzer.  The pre-fix supervisor
defects are pinned as inline replicas so the patterns that motivated
the rules can never silently stop firing.
"""

from __future__ import annotations

from repro.analysis.lint import default_target, lint_modules, lint_paths, lint_text
from repro.analysis.noqa import Suppressions
from repro.analysis.rules import ModuleContext


def findings_of(*named_sources, rules):
    """Lint several (relpath, source) modules as one project."""
    modules = []
    suppressions = {}
    for relpath, source in named_sources:
        modules.append(ModuleContext.parse(relpath, source, relpath))
        suppressions[relpath] = Suppressions.from_source(source)
    return lint_modules(modules, suppressions, rules)


def rep(source, relpath="mod.py", rules=("REP009",)):
    return [
        (f.rule, f.line) for f in lint_text(source, relpath, rules=rules)
    ]


# ----------------------------------------------------------------------
# REP009 — lock discipline
# ----------------------------------------------------------------------


class TestRep009:
    def test_mixed_access_flagged(self):
        src = (
            "import threading\n"
            "class Counter:\n"
            "    def __init__(self):\n"
            "        self._lock = threading.Lock()\n"
            "        self._count = 0\n"
            "    def inc(self):\n"
            "        with self._lock:\n"
            "            self._count += 1\n"
            "    def reset(self):\n"
            "        self._count = 0\n"
        )
        findings = lint_text(src, "mod.py", rules=["REP009"])
        assert [(f.rule, f.line) for f in findings] == [("REP009", 10)]
        assert "Counter._count" in findings[0].message
        assert "written" in findings[0].message

    def test_consistent_locking_passes(self):
        src = (
            "import threading\n"
            "class Counter:\n"
            "    def __init__(self):\n"
            "        self._lock = threading.Lock()\n"
            "        self._count = 0\n"
            "    def inc(self):\n"
            "        with self._lock:\n"
            "            self._count += 1\n"
            "    def read(self):\n"
            "        with self._lock:\n"
            "            return self._count\n"
        )
        assert rep(src) == []

    def test_read_only_attribute_passes(self):
        # Written only in __init__: immutable-after-construction state
        # may be read with or without the lock.
        src = (
            "import threading\n"
            "class C:\n"
            "    def __init__(self):\n"
            "        self._lock = threading.Lock()\n"
            "        self._limit = 8\n"
            "    def a(self):\n"
            "        with self._lock:\n"
            "            return self._limit\n"
            "    def b(self):\n"
            "        return self._limit\n"
        )
        assert rep(src) == []

    def test_never_locked_attribute_passes(self):
        # No mixed discipline: the attribute is simply not lock-managed.
        src = (
            "import threading\n"
            "class C:\n"
            "    def __init__(self):\n"
            "        self._lock = threading.Lock()\n"
            "        self._n = 0\n"
            "    def a(self):\n"
            "        self._n += 1\n"
            "    def b(self):\n"
            "        return self._n\n"
        )
        assert rep(src) == []

    def test_event_attribute_exempt(self):
        # threading.Event is self-synchronizing (kind 'sync'): setting
        # it outside the lock while checking it inside is fine — this is
        # exactly the fixed supervisor stop-flag pattern.
        src = (
            "import threading\n"
            "class C:\n"
            "    def __init__(self):\n"
            "        self._lock = threading.Lock()\n"
            "        self._stop = threading.Event()\n"
            "    def stop(self):\n"
            "        self._stop.set()\n"
            "    def poll(self):\n"
            "        with self._lock:\n"
            "            return self._stop.is_set()\n"
        )
        assert rep(src) == []

    def test_lockless_class_not_audited(self):
        src = (
            "class C:\n"
            "    def __init__(self):\n"
            "        self._n = 0\n"
            "    def a(self):\n"
            "        self._n += 1\n"
        )
        assert rep(src) == []

    def test_private_helper_called_under_lock_is_guarded(self):
        # Interprocedural: _append never takes the lock itself, but its
        # only caller holds it, so its accesses count as guarded.
        src = (
            "import threading\n"
            "class Safe:\n"
            "    def __init__(self):\n"
            "        self._lock = threading.Lock()\n"
            "        self._items = []\n"
            "    def add(self, x):\n"
            "        with self._lock:\n"
            "            self._append(x)\n"
            "    def _append(self, x):\n"
            "        self._items.append(x)\n"
            "    def snapshot(self):\n"
            "        with self._lock:\n"
            "            return list(self._items)\n"
        )
        assert rep(src) == []

    def test_unlocked_call_path_breaks_the_guarantee(self):
        # Same class, plus one public caller that skips the lock: the
        # helper's entry floor drops to empty and the write is flagged.
        src = (
            "import threading\n"
            "class Unsafe:\n"
            "    def __init__(self):\n"
            "        self._lock = threading.Lock()\n"
            "        self._items = []\n"
            "    def add(self, x):\n"
            "        with self._lock:\n"
            "            self._append(x)\n"
            "    def drain(self, x):\n"
            "        self._append(x)\n"
            "    def _append(self, x):\n"
            "        self._items.append(x)\n"
            "    def snapshot(self):\n"
            "        with self._lock:\n"
            "            return list(self._items)\n"
        )
        assert rep(src) == [("REP009", 12)]

    def test_thread_target_escape_is_unlocked_entry(self):
        # A private method handed to Thread(target=...) can run with no
        # locks held, whatever its in-class callers hold.
        src = (
            "import threading\n"
            "class Esc:\n"
            "    def __init__(self):\n"
            "        self._lock = threading.Lock()\n"
            "        self._n = 0\n"
            "    def start(self):\n"
            "        threading.Thread(target=self._worker).start()\n"
            "    def _worker(self):\n"
            "        self._n += 1\n"
            "    def bump(self):\n"
            "        with self._lock:\n"
            "            self._n += 1\n"
        )
        assert rep(src) == [("REP009", 9)]

    def test_supervisor_stop_flag_regression(self):
        # Replica of the pre-fix WorkerSupervisor._stopping defect:
        # stop() wrote the flag bare while _reap read it under the lock
        # (reached only through a locked caller — interprocedural).
        src = (
            "import threading\n"
            "class Sup:\n"
            "    def __init__(self):\n"
            "        self._lock = threading.Lock()\n"
            "        self._stopping = False\n"
            "    def stop(self):\n"
            "        self._stopping = True\n"
            "    def _reap(self):\n"
            "        if self._stopping:\n"
            "            return\n"
            "    def poll(self):\n"
            "        with self._lock:\n"
            "            self._reap()\n"
        )
        findings = lint_text(src, "sup.py", rules=["REP009"])
        assert [(f.rule, f.line) for f in findings] == [("REP009", 7)]
        assert "Sup._stopping" in findings[0].message

    def test_cross_module_caller_breaks_the_guarantee(self):
        worker_src = (
            "import threading\n"
            "class RemoteWorker:\n"
            "    def __init__(self):\n"
            "        self._lock = threading.Lock()\n"
            "        self._items = []\n"
            "    def put(self, x):\n"
            "        with self._lock:\n"
            "            self._unsafe_put(x)\n"
            "    def _unsafe_put(self, x):\n"
            "        self._items.append(x)\n"
            "    def get(self):\n"
            "        with self._lock:\n"
            "            return list(self._items)\n"
        )
        manager_src = (
            "from worker import RemoteWorker\n"
            "class Manager:\n"
            "    def __init__(self):\n"
            "        self.worker = RemoteWorker()\n"
            "    def run(self, x):\n"
            "        self.worker._unsafe_put(x)\n"
        )
        # Alone, every path into _unsafe_put holds the lock: clean.
        alone = findings_of(("worker.py", worker_src), rules=["REP009"])
        assert alone == []
        # The cross-module unlocked caller makes the write mixed.
        both = findings_of(
            ("worker.py", worker_src),
            ("manager.py", manager_src),
            rules=["REP009"],
        )
        assert [(f.path, f.rule, f.line) for f in both] == [
            ("worker.py", "REP009", 10)
        ]

    def test_noqa_suppresses(self):
        src = (
            "import threading\n"
            "class C:\n"
            "    def __init__(self):\n"
            "        self._lock = threading.Lock()\n"
            "        self._n = 0\n"
            "    def a(self):\n"
            "        with self._lock:\n"
            "            self._n += 1\n"
            "    def b(self):\n"
            "        self._n = 0  # repro: noqa REP009\n"
        )
        assert rep(src) == []


# ----------------------------------------------------------------------
# REP010 — fork/spawn safety
# ----------------------------------------------------------------------


class TestRep010:
    def test_process_start_under_lock(self):
        src = (
            "import multiprocessing\n"
            "import threading\n"
            "def main():\n"
            "    pass\n"
            "class Sup:\n"
            "    def __init__(self):\n"
            "        self._lock = threading.Lock()\n"
            "    def spawn(self):\n"
            "        with self._lock:\n"
            "            proc = multiprocessing.Process(target=main)\n"
            "            proc.start()\n"
        )
        findings = lint_text(src, "mod.py", rules=["REP010"])
        assert [(f.rule, f.line) for f in findings] == [("REP010", 11)]
        assert "self._lock" in findings[0].message

    def test_start_after_release_passes(self):
        src = (
            "import multiprocessing\n"
            "import threading\n"
            "def main():\n"
            "    pass\n"
            "class Sup:\n"
            "    def __init__(self):\n"
            "        self._lock = threading.Lock()\n"
            "    def spawn(self):\n"
            "        with self._lock:\n"
            "            proc = multiprocessing.Process(target=main)\n"
            "        proc.start()\n"
        )
        assert rep(src, rules=("REP010",)) == []

    def test_interprocedural_spawn_under_callers_lock(self):
        # The start() itself holds nothing; every caller holds the lock.
        src = (
            "import multiprocessing\n"
            "import threading\n"
            "def main():\n"
            "    pass\n"
            "class Sup:\n"
            "    def __init__(self):\n"
            "        self._lock = threading.Lock()\n"
            "    def resize(self):\n"
            "        with self._lock:\n"
            "            self._do_spawn()\n"
            "    def _do_spawn(self):\n"
            "        proc = multiprocessing.Process(target=main)\n"
            "        proc.start()\n"
        )
        findings = lint_text(src, "mod.py", rules=["REP010"])
        assert [(f.rule, f.line) for f in findings] == [("REP010", 13)]

    def test_os_fork_under_local_lock_in_function(self):
        src = (
            "import os\n"
            "import threading\n"
            "def daemonize():\n"
            "    guard = threading.Lock()\n"
            "    with guard:\n"
            "        os.fork()\n"
        )
        findings = lint_text(src, "mod.py", rules=["REP010"])
        assert [(f.rule, f.line) for f in findings] == [("REP010", 6)]
        assert "guard" in findings[0].message

    def test_subprocess_under_lock(self):
        src = (
            "import subprocess\n"
            "import threading\n"
            "class C:\n"
            "    def __init__(self):\n"
            "        self._lock = threading.Lock()\n"
            "    def run(self):\n"
            "        with self._lock:\n"
            "            subprocess.run(['ls'])\n"
        )
        assert rep(src, rules=("REP010",)) == [("REP010", 8)]

    def test_bound_method_target_capture(self):
        src = (
            "import multiprocessing\n"
            "import threading\n"
            "class S:\n"
            "    def __init__(self):\n"
            "        self._lock = threading.Lock()\n"
            "    def go(self):\n"
            "        multiprocessing.Process(target=self._run).start()\n"
            "    def _run(self):\n"
            "        pass\n"
        )
        findings = lint_text(src, "mod.py", rules=["REP010"])
        assert [(f.rule, f.line) for f in findings] == [("REP010", 7)]
        assert "bound method self._run" in findings[0].message

    def test_risky_attribute_in_args_capture(self):
        src = (
            "import multiprocessing\n"
            "import socket\n"
            "def work(sock):\n"
            "    pass\n"
            "class S:\n"
            "    def __init__(self):\n"
            "        self._sock = socket.socket()\n"
            "    def go(self):\n"
            "        multiprocessing.Process(\n"
            "            target=work, args=(self._sock,)\n"
            "        ).start()\n"
        )
        findings = lint_text(src, "mod.py", rules=["REP010"])
        assert len(findings) == 1
        assert "self._sock (socket)" in findings[0].message

    def test_queue_in_args_passes(self):
        # multiprocessing queues are designed to cross the boundary.
        src = (
            "import multiprocessing\n"
            "def work(q):\n"
            "    pass\n"
            "class S:\n"
            "    def __init__(self):\n"
            "        self._tasks = multiprocessing.Queue()\n"
            "    def go(self):\n"
            "        multiprocessing.Process(\n"
            "            target=work, args=(self._tasks,)\n"
            "        ).start()\n"
        )
        assert rep(src, rules=("REP010",)) == []

    def test_noqa_suppresses(self):
        src = (
            "import os\n"
            "import threading\n"
            "def daemonize():\n"
            "    guard = threading.Lock()\n"
            "    with guard:\n"
            "        os.fork()  # repro: noqa REP010\n"
        )
        assert rep(src, rules=("REP010",)) == []


# ----------------------------------------------------------------------
# REP011 — crash consistency
# ----------------------------------------------------------------------

RAW_APPEND = (
    "def save(path, line):\n"
    "    with open(path, 'a') as handle:\n"
    "        handle.write(line)\n"
)


class TestRep011:
    def test_raw_append_in_journal_module(self):
        findings = lint_text(RAW_APPEND, "journal.py", rules=["REP011"])
        assert [(f.rule, f.line) for f in findings] == [("REP011", 2)]
        assert "torn-write story" in findings[0].message

    def test_same_write_in_unrelated_module_passes(self):
        assert rep(RAW_APPEND, "notes.py", rules=("REP011",)) == []

    def test_atomic_writer_passes(self):
        src = (
            "from repro.runstate.atomic import append_durable_line\n"
            "def save(path, line):\n"
            "    append_durable_line(path, line)\n"
        )
        assert rep(src, "journal.py", rules=("REP011",)) == []

    def test_runstate_write_side_exempt(self):
        # runstate/ IS the sanctioned torn-write-safe implementation.
        assert (
            rep(RAW_APPEND, "repro/runstate/journal.py", rules=("REP011",))
            == []
        )

    def test_json_dump_in_bench_module(self):
        src = (
            "import json\n"
            "def emit(rows, handle):\n"
            "    json.dump(rows, handle)\n"
        )
        assert rep(src, "bench_report.py", rules=("REP011",)) == [
            ("REP011", 3)
        ]

    def test_untolerated_parse_flagged(self):
        src = (
            "import json\n"
            "def load(line):\n"
            "    return json.loads(line)\n"
        )
        findings = lint_text(src, "journal.py", rules=["REP011"])
        assert [(f.rule, f.line) for f in findings] == [("REP011", 3)]
        assert "torn-record tolerance" in findings[0].message

    def test_tolerant_parse_passes(self):
        src = (
            "import json\n"
            "def load(line):\n"
            "    try:\n"
            "        return json.loads(line)\n"
            "    except ValueError:\n"
            "        return None\n"
        )
        assert rep(src, "journal.py", rules=("REP011",)) == []

    def test_runstate_read_side_not_exempt(self):
        # Even the sanctioned writer package must tolerate torn reads.
        src = (
            "import json\n"
            "def load(line):\n"
            "    return json.loads(line)\n"
        )
        assert rep(src, "repro/runstate/journal.py", rules=("REP011",)) == [
            ("REP011", 3)
        ]

    def test_intolerant_handler_does_not_count(self):
        src = (
            "import json\n"
            "def load(line):\n"
            "    try:\n"
            "        return json.loads(line)\n"
            "    except KeyError:\n"
            "        return None\n"
        )
        assert rep(src, "journal.py", rules=("REP011",)) == [("REP011", 4)]

    def test_noqa_suppresses(self):
        src = (
            "def save(path, line):\n"
            "    with open(path, 'a') as handle:  # repro: noqa REP011\n"
            "        handle.write(line)\n"
        )
        assert rep(src, "journal.py", rules=("REP011",)) == []


# ----------------------------------------------------------------------
# Multi-rule suppression and whole-repo gates
# ----------------------------------------------------------------------


class TestMultiRuleNoqa:
    def test_one_pragma_listing_both_rules(self):
        src = (
            "import json\n"
            "import threading\n"
            "class JournalBox:\n"
            "    def __init__(self):\n"
            "        self._lock = threading.Lock()\n"
            "        self._dirty = False\n"
            "    def mark(self):\n"
            "        with self._lock:\n"
            "            self._dirty = True\n"
            "    def clear(self):\n"
            "        self._dirty = False  # repro: noqa REP009,REP011\n"
            "    def load(self, text):\n"
            "        return json.loads(text)  # repro: noqa REP009,REP011\n"
        )
        # Full run: both findings suppressed, neither pragma is stale
        # (each suppressed at least one of its listed rules).
        assert lint_text(src, "journal_box.py") == []


class TestRepoTree:
    def test_concsan_rules_clean_on_repo(self):
        findings, errors = lint_paths(
            [default_target()], rules=["REP009", "REP010", "REP011"]
        )
        assert errors == []
        assert findings == []
