"""Tests for the policy-zoo tournament (repro.policy.tournament and the
``repro tournament`` CLI).

The leaderboard is a derived artifact of the journaled cell sweep, so
its determinism contract is the harness's: two identical runs must be
byte-identical, and a parallel run must match a serial one exactly.
"""

from __future__ import annotations

import json
import pathlib

import pytest

from repro.cli import main
from repro.config import tiny
from repro.errors import ReproError
from repro.experiments.harness import ExperimentRunner
from repro.experiments.runconfig import RunConfig
from repro.policy.tournament import (
    BASELINE_SPEC,
    DEFAULT_POLICIES,
    DEFAULT_SCENARIOS,
    run_tournament,
)

POLICIES_4 = ("greedy-always", "madvise", "khugepaged", "ingens")
SCENARIOS_2 = ("fresh", "fragmented:0.5")


def _run(tmp_path, workers=1, tag="a", policies=POLICIES_4):
    journal = str(tmp_path / f"tournament-{tag}.jsonl")
    runner = ExperimentRunner(
        config=tiny(),
        run_config=RunConfig(workers=workers, journal=journal),
        datasets=("test-small",),
    )
    try:
        result = run_tournament(
            runner,
            policies=policies,
            scenarios=SCENARIOS_2,
            datasets=("test-small",),
        )
    finally:
        runner.run_config.journal.close()
    assert not runner.failures, [f.describe() for f in runner.failures]
    return result, pathlib.Path(journal).read_bytes()


class TestLeaderboard:
    def test_shape_and_ranking(self, tmp_path):
        result, _ = _run(tmp_path)
        assert len(result.rows) == len(POLICIES_4)
        assert [row["rank"] for row in result.rows] == [1, 2, 3, 4]
        overall = [row["overall"] for row in result.rows]
        assert overall == sorted(overall, reverse=True)
        for row in result.rows:
            assert set(("policy", "overall")) <= set(row)
            for scenario_col in ("fresh", "fragmented(50%,+3GB)"):
                assert scenario_col in row

    def test_two_runs_byte_identical(self, tmp_path):
        first, journal_a = _run(tmp_path, tag="a")
        second, journal_b = _run(tmp_path, tag="b")
        assert first.render() == second.render()
        assert first.to_json() == second.to_json()
        assert journal_a == journal_b

    def test_serial_vs_parallel_byte_identical(self, tmp_path):
        serial, journal_serial = _run(tmp_path, workers=1, tag="s")
        pooled, journal_pooled = _run(tmp_path, workers=4, tag="p")
        assert serial.render() == pooled.render()
        assert serial.to_json() == pooled.to_json()
        assert journal_serial == journal_pooled

    def test_parameterized_specs_are_distinct_journal_cells(
        self, tmp_path
    ):
        _, journal = _run(
            tmp_path,
            tag="params",
            policies=("ingens:threshold=0.8", "ingens:threshold=0.6"),
        )
        specs = {
            json.loads(line)["spec"] for line in journal.splitlines()
        }
        # (baseline + two ingens parameterizations) x two scenarios ->
        # six distinct cell fingerprints; identical param values would
        # collapse the count.
        assert len(specs) == 6

    def test_rejects_empty_and_duplicate_policies(self, tmp_path):
        runner = ExperimentRunner(config=tiny(), datasets=("test-small",))
        with pytest.raises(ReproError):
            run_tournament(runner, policies=())
        with pytest.raises(ReproError):
            run_tournament(
                runner, policies=("ingens", "ingens"),
                scenarios=("fresh",),
            )

    def test_defaults_are_sane(self):
        assert len(DEFAULT_POLICIES) >= 4
        assert len(DEFAULT_SCENARIOS) >= 2
        assert BASELINE_SPEC == "never"
        assert BASELINE_SPEC not in DEFAULT_POLICIES


class TestCli:
    ARGS = [
        "--profile", "tiny",
        "--datasets", "test-small",
        "--policies", ",".join(POLICIES_4),
        "--scenarios", ",".join(SCENARIOS_2),
    ]

    def test_tournament_subcommand(self, capsys):
        assert main(["tournament", *self.ARGS]) == 0
        out = capsys.readouterr().out
        assert "rank" in out
        assert "greedy-always" in out
        assert "overall" in out

    def test_tournament_json(self, capsys):
        assert main(["tournament", *self.ARGS, "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["figure_id"] == "tournament"
        assert len(payload["rows"]) == 4

    def test_tournament_save(self, tmp_path, capsys):
        out_dir = str(tmp_path / "results")
        assert main(["tournament", *self.ARGS, "--out", out_dir]) == 0
        saved = sorted(p.name for p in pathlib.Path(out_dir).iterdir())
        assert saved == ["tournament.json", "tournament.txt"]

    def test_figure_tournament_with_policy_flags(self, capsys):
        code = main(
            [
                "figure", "tournament",
                "--profile", "tiny",
                "--datasets", "test-small",
                "--policy", "greedy-always,madvise",
                "--policy", "khugepaged",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "khugepaged" in out

    def test_policy_flag_rejected_on_other_figures(self, capsys):
        code = main(
            [
                "figure", "fig01",
                "--profile", "tiny",
                "--datasets", "test-small",
                "--policy", "madvise",
            ]
        )
        assert code == 2
        assert "tournament" in capsys.readouterr().err

    def test_unknown_zoo_policy_errors(self, capsys):
        code = main(["tournament", *self.ARGS[:-2],
                     "--policies", "definitely-missing"])
        assert code == 2
        assert "definitely-missing" in capsys.readouterr().err
