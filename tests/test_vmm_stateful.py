"""Stateful property test: VMM invariants under arbitrary operation
sequences (hypothesis rule-based state machine).

Invariants checked after every step:

1. No physical frame is mapped by two pages (frames are exclusive).
2. ``is_huge`` agrees with ``huge_region`` chunk state.
3. Every resident page's frame is marked used in the frame map, with
   the VMM as owner (or HUGE state for THP-backed frames).
4. Free-frame accounting is consistent: used-by-VMM + free + foreign
   frames == total.
5. Unmapping everything returns the node to fully free.
"""

from __future__ import annotations

import numpy as np
from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import (
    RuleBasedStateMachine,
    invariant,
    precondition,
    rule,
)

from repro.config import tiny
from repro.mem.physical import FrameState, NodeMemory
from repro.mem.stats import KernelLedger
from repro.mem.swap import SwapDevice
from repro.mem.thp import ThpMode, ThpPolicy
from repro.mem.vmm import FRAME_SWAPPED, VirtualMemoryManager


class VmmMachine(RuleBasedStateMachine):
    def __init__(self):
        super().__init__()
        self.config = tiny()
        ledger = KernelLedger(cost=self.config.cost)
        self.node = NodeMemory(0, self.config, ledger)
        self.vmm = VirtualMemoryManager(
            self.node, ThpPolicy(mode=ThpMode.ALWAYS), self.config
        )
        self.vmm.swap_device = SwapDevice()
        self.counter = 0

    # ------------------------------------------------------------- rules

    @rule(chunks=st.integers(min_value=1, max_value=4),
          extra_pages=st.integers(min_value=0, max_value=3),
          advised=st.booleans())
    def mmap_and_touch(self, chunks, extra_pages, advised):
        huge = self.config.pages.huge_page_size
        base = self.config.pages.base_page_size
        length = chunks * huge + extra_pages * base
        # Keep total demand bounded below node capacity.
        if self._mapped_pages() + length // base > self.node.num_frames // 2:
            return
        self.counter += 1
        vma = self.vmm.mmap(f"vma{self.counter}", length)
        if advised:
            self.vmm.madvise_huge(vma)
        self.vmm.touch(vma)

    @precondition(lambda self: self.vmm.vmas)
    @rule(index=st.integers(min_value=0, max_value=10))
    def unmap_one(self, index):
        vma = self.vmm.vmas[index % len(self.vmm.vmas)]
        self.vmm.unmap(vma)

    @precondition(lambda self: self.vmm.vmas)
    @rule(index=st.integers(min_value=0, max_value=10),
          chunk=st.integers(min_value=0, max_value=7))
    def demote(self, index, chunk):
        vma = self.vmm.vmas[index % len(self.vmm.vmas)]
        chunk = chunk % vma.nchunks
        if vma.huge_region[chunk] >= 0:
            self.vmm.demote_chunk(vma, chunk)

    @precondition(lambda self: self.vmm.vmas)
    @rule(index=st.integers(min_value=0, max_value=10),
          chunk=st.integers(min_value=0, max_value=7))
    def promote(self, index, chunk):
        vma = self.vmm.vmas[index % len(self.vmm.vmas)]
        chunk = chunk % vma.nchunks
        if (
            vma.huge_region[chunk] < 0
            and vma.chunk_is_full(chunk)
            and bool((vma.frame[vma.chunk_pages(chunk)] >= 0).all())
        ):
            self.vmm.promote_chunk(vma, chunk)

    @precondition(lambda self: any(
        v.resident_pages for v in self.vmm.vmas))
    @rule(count=st.integers(min_value=1, max_value=4))
    def swap_out(self, count):
        resident = sum(v.resident_pages for v in self.vmm.vmas)
        if resident > count:
            try:
                self.vmm.swap_out_pages(count)
            except Exception:
                pass  # swap exhaustion is acceptable mid-sequence

    @precondition(lambda self: any(
        v.swapped_pages for v in self.vmm.vmas))
    @rule(index=st.integers(min_value=0, max_value=10))
    def swap_in(self, index):
        for vma in self.vmm.vmas:
            swapped = np.flatnonzero(vma.frame == FRAME_SWAPPED)
            if swapped.size:
                self.vmm.swap_in_page(vma, int(swapped[index % swapped.size]))
                return

    # -------------------------------------------------------- invariants

    def _mapped_pages(self) -> int:
        return sum(v.npages for v in self.vmm.vmas)

    @invariant()
    def frames_are_exclusive(self):
        seen: set[int] = set()
        for vma in self.vmm.vmas:
            frames = vma.frame[vma.frame >= 0]
            for frame in frames.tolist():
                assert frame not in seen, "frame mapped twice"
                seen.add(frame)

    @invariant()
    def is_huge_matches_huge_region(self):
        for vma in self.vmm.vmas:
            for chunk in range(vma.nchunks):
                pages = vma.chunk_pages(chunk)
                if vma.huge_region[chunk] >= 0:
                    assert vma.is_huge[pages].all()
                else:
                    assert not vma.is_huge[pages].any()

    @invariant()
    def resident_frames_are_used_on_node(self):
        for vma in self.vmm.vmas:
            frames = vma.frame[vma.frame >= 0]
            states = self.node.state[frames]
            assert (states != FrameState.FREE).all()

    @invariant()
    def huge_regions_fully_owned(self):
        for vma in self.vmm.vmas:
            for chunk in range(vma.nchunks):
                region = int(vma.huge_region[chunk])
                if region >= 0:
                    frames = self.node.region_frames(region)
                    assert (
                        self.node.state[frames] == FrameState.HUGE
                    ).all()

    def teardown(self):
        for vma in list(self.vmm.vmas):
            self.vmm.unmap(vma)
        # Swapped pages hold no frames; everything else must be free.
        assert self.node.free_frame_count == self.node.num_frames


VmmStatefulTest = VmmMachine.TestCase
VmmStatefulTest.settings = settings(
    max_examples=30, stateful_step_count=30, deadline=None
)
