"""Property-based tests for trace compression and stream merging."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.tlb.trace import AccessStream, compress_trace, merge_streams

raw_traces = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=50),  # page key basis
        st.integers(min_value=0, max_value=4),  # array id
    ),
    min_size=0,
    max_size=400,
)


def expand(trace):
    """Decompress a TlbTrace back into the raw key/aid sequences."""
    keys = np.repeat(trace.keys, trace.counts)
    aids = np.repeat(trace.array_ids, trace.counts)
    return keys, aids


@given(raw_traces)
@settings(max_examples=200, deadline=None)
def test_compression_roundtrip(entries):
    keys = np.array([k << 1 for k, _ in entries], dtype=np.int64)
    aids = np.array([a for _, a in entries], dtype=np.uint8)
    trace = compress_trace(keys, aids)
    out_keys, out_aids = expand(trace)
    assert np.array_equal(out_keys, keys)
    assert np.array_equal(out_aids, aids)


@given(raw_traces)
@settings(max_examples=200, deadline=None)
def test_compression_counts_and_runs(entries):
    keys = np.array([k << 1 for k, _ in entries], dtype=np.int64)
    aids = np.array([a for _, a in entries], dtype=np.uint8)
    trace = compress_trace(keys, aids)
    assert trace.total_accesses == len(entries)
    assert (trace.counts >= 1).all()
    # No two adjacent runs may share (key, array id) — compression must
    # be maximal.
    if len(trace) > 1:
        same_key = trace.keys[1:] == trace.keys[:-1]
        same_aid = trace.array_ids[1:] == trace.array_ids[:-1]
        assert not np.any(same_key & same_aid)


@given(
    st.lists(
        st.lists(
            st.tuples(
                st.floats(
                    min_value=-10, max_value=1000,
                    allow_nan=False, allow_infinity=False,
                ),
                st.integers(min_value=0, max_value=4),
                st.integers(min_value=0, max_value=1000),
            ),
            min_size=0,
            max_size=50,
        ),
        min_size=1,
        max_size=4,
    )
)
@settings(max_examples=100, deadline=None)
def test_merge_streams_is_position_sorted_permutation(parts):
    built = []
    all_entries = []
    for part in parts:
        positions = np.array([p[0] for p in part], dtype=np.float64)
        aids = np.array([p[1] for p in part], dtype=np.uint8)
        idx = np.array([p[2] for p in part], dtype=np.int64)
        built.append((positions, aids, idx))
        all_entries.extend(part)
    merged = merge_streams(built)
    assert len(merged) == len(all_entries)
    # The merged stream is the multiset of inputs...
    merged_multiset = sorted(
        zip(merged.array_ids.tolist(), merged.indices.tolist())
    )
    input_multiset = sorted((a, i) for _, a, i in all_entries)
    assert merged_multiset == input_multiset
    # ...ordered by position.
    order = np.argsort(
        np.concatenate([p[0] for p in built]), kind="stable"
    )
    positions_sorted = np.concatenate([p[0] for p in built])[order]
    assert (np.diff(positions_sorted) >= 0).all()


@given(raw_traces, raw_traces)
@settings(max_examples=100, deadline=None)
def test_stream_concatenate_preserves_order(a_entries, b_entries):
    def stream(entries):
        return AccessStream(
            np.array([a for _, a in entries], dtype=np.uint8),
            np.array([k for k, _ in entries], dtype=np.int64),
        )

    merged = AccessStream.concatenate([stream(a_entries), stream(b_entries)])
    assert len(merged) == len(a_entries) + len(b_entries)
    expected_ids = [a for _, a in a_entries] + [a for _, a in b_entries]
    assert merged.array_ids.tolist() == expected_ids
