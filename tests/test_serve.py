"""Tests for repro.serve: config validation, the circuit breaker,
response rendering, and the service's dedupe/admission/ladder behavior.

Service-level tests run the real :class:`SweepService` (worker
processes and all) inside ``asyncio.run`` — no HTTP, so they stay fast
— plus one end-to-end round trip through a real ``repro serve``
subprocess over a UNIX socket.  Process-level adversity (SIGKILLs, torn
appends) lives in test_chaos_recovery.py.
"""

from __future__ import annotations

import asyncio
import os
import time

import pytest

from repro.errors import ChaosError, ConfigError
from repro.runstate.journal import scan_records
from repro.serve import (
    CircuitBreaker,
    MODE_CACHED_ONLY,
    MODE_DRAINING,
    MODE_PARALLEL,
    MODE_SERIAL,
    Response,
    ServiceConfig,
    SweepService,
)
from repro.serve.breaker import STATE_CLOSED, STATE_OPEN, STATE_PROBE

pytestmark = pytest.mark.skipif(
    not hasattr(os, "fork"), reason="service workers need fork/spawn"
)


def make_config(tmp_path, **overrides) -> ServiceConfig:
    defaults = dict(
        journal_path=str(tmp_path / "run.jsonl"),
        workers=1,
        profile="tiny",
        restart_backoff_base_seconds=0.05,
    )
    defaults.update(overrides)
    return ServiceConfig(**defaults)


def run_service(tmp_path, body, **overrides):
    """Run ``await body(service)`` against a started service."""

    async def main():
        service = SweepService(make_config(tmp_path, **overrides))
        service.start()
        try:
            return await body(service)
        finally:
            service.request_drain()
            service.stop()

    return asyncio.run(main())


SUBMIT = {"workload": "bfs", "dataset": "test-small"}


# ----------------------------------------------------------------------
# Config
# ----------------------------------------------------------------------


class TestServiceConfig:
    def test_requires_journal(self):
        with pytest.raises(ConfigError):
            ServiceConfig(journal_path="")

    def test_rejects_bad_values(self, tmp_path):
        journal = str(tmp_path / "run.jsonl")
        for bad in (
            dict(workers=0),
            dict(queue_depth=0),
            dict(max_job_attempts=0),
            dict(breaker_threshold=0),
            dict(breaker_cooldown_seconds=0),
            dict(heartbeat_interval_seconds=-1),
            dict(degrade_restart_threshold=0),
            dict(profile="no-such-profile"),
        ):
            with pytest.raises(ConfigError):
                ServiceConfig(journal_path=journal, **bad)

    def test_initial_mode_follows_effective_workers(
        self, tmp_path, monkeypatch
    ):
        journal = str(tmp_path / "run.jsonl")
        # initial_mode follows the CPU-clamped worker count, not the
        # raw knob: workers=2 on a 1-CPU host is one worker → serial.
        monkeypatch.setattr(os, "cpu_count", lambda: 4)
        assert (
            ServiceConfig(journal_path=journal, workers=2).initial_mode
            == MODE_PARALLEL
        )
        assert (
            ServiceConfig(journal_path=journal, workers=1).initial_mode
            == MODE_SERIAL
        )
        monkeypatch.setattr(os, "cpu_count", lambda: 1)
        assert (
            ServiceConfig(journal_path=journal, workers=2).initial_mode
            == MODE_SERIAL
        )

    def test_worker_settings_are_plain_data(self, tmp_path):
        import pickle

        settings = ServiceConfig(
            journal_path=str(tmp_path / "run.jsonl")
        ).worker_settings()
        assert pickle.loads(pickle.dumps(settings)) == settings


# ----------------------------------------------------------------------
# Supervisor pool sizing
# ----------------------------------------------------------------------


class _FakeProc:
    pid = 12345

    def __init__(self) -> None:
        self.started = False

    def start(self) -> None:
        self.started = True

    @staticmethod
    def is_alive() -> bool:
        return True


def _stub_supervisor(workers: int):
    """A WorkerSupervisor whose spawns are bookkeeping-only, so the
    sizing logic can be driven deterministically with no processes."""
    from repro.serve.supervisor import WorkerSupervisor

    events = []
    sup = WorkerSupervisor(
        settings={},
        workers=workers,
        completion=lambda *args: None,
        listener=lambda name, **fields: events.append(name),
    )

    def spawn():
        slot = sup._next_slot
        sup._next_slot += 1
        proc = _FakeProc()
        sup._procs[slot] = proc
        sup._last_hb[slot] = time.monotonic()
        return slot, proc

    sup._spawn_slot = spawn
    with sup._lock:
        pending = [spawn() for _ in range(workers)]
    sup._launch(pending)
    return sup, events


class TestSupervisorPoolSizing:
    """Regression: the pool must never settle below target while
    ``target >= 1`` — the shipped degrade race (both workers crash,
    ladder shrinks, the sole respawned worker eats the shrink pill and
    exits clean) used to strand the pool at zero forever."""

    def _drain(self, sup) -> None:
        sup._tasks.cancel_join_thread()
        sup._results.cancel_join_thread()
        sup._tasks.close()
        sup._results.close()

    def test_clean_exit_below_target_respawns(self):
        sup, events = _stub_supervisor(workers=1)
        try:
            with sup._lock:
                sup._reap_slot(0, clean=True)  # no shrink was requested
            assert len(sup._procs) == 0
            assert len(sup._respawn_at) == 1
            assert "worker.restart" in events
        finally:
            self._drain(sup)

    def test_shrink_pill_exit_does_not_respawn(self):
        sup, events = _stub_supervisor(workers=2)
        try:
            sup.set_workers(1)
            assert sup._pending_pills == 1
            with sup._lock:
                sup._reap_slot(0, clean=True)  # the pill consumer
            assert sup._pending_pills == 0
            assert len(sup._procs) == 1
            assert len(sup._respawn_at) == 0
            assert "worker.restart" not in events
        finally:
            self._drain(sup)

    def test_degrade_race_settles_at_target(self):
        # The exact shipped race: both workers crash (backoff respawns
        # pending), the ladder shrinks to serial, respawns come due,
        # and the pill is eventually consumed by a clean exit.  The
        # pool must settle at the target, not zero.
        sup, _ = _stub_supervisor(workers=2)
        try:
            with sup._lock:
                sup._reap_slot(0, clean=False)
                sup._reap_slot(1, clean=False)
            assert len(sup._procs) == 0
            assert len(sup._respawn_at) == 2
            # Shrink while everything is down: pills must be computed
            # from effective capacity (2 respawning), not the previous
            # target.
            sup.set_workers(1)
            assert sup._pending_pills == 1
            # Force both respawn deadlines due and run the sweep.
            with sup._lock:
                for slot in list(sup._respawn_at):
                    sup._respawn_at[slot] = 0.0
            sup._sweep()
            # A worker eats the queued pill and exits clean.
            with sup._lock:
                victim = next(iter(sup._procs))
                sup._reap_slot(victim, clean=True)
            assert sup._pending_pills == 0
            # Invariant: live + scheduled respawns covers the target.
            with sup._lock:
                assert (
                    len(sup._procs) + len(sup._respawn_at)
                    >= sup._target_workers
                )
                assert sup._target_workers == 1
        finally:
            self._drain(sup)

    def test_workers_started_outside_the_lock(self):
        """Regression (REP010): Process.start() used to run while
        holding ``self._lock`` — the forked child inherited a held
        lock.  Now spawns are registered under the lock but started by
        ``_launch`` after release, so the ``worker.spawn`` listener
        observes a free lock."""
        from repro.serve.supervisor import WorkerSupervisor

        lock_free_at_spawn = []
        sup = None

        def listener(name, **fields):
            if name == "worker.spawn":
                free = sup._lock.acquire(blocking=False)
                if free:
                    sup._lock.release()
                lock_free_at_spawn.append(free)

        sup = WorkerSupervisor(
            settings={},
            workers=0,
            completion=lambda *args: None,
            listener=listener,
        )

        def spawn():
            slot = sup._next_slot
            sup._next_slot += 1
            proc = _FakeProc()
            sup._procs[slot] = proc
            sup._last_hb[slot] = time.monotonic()
            return slot, proc

        sup._spawn_slot = spawn
        try:
            sup.set_workers(2)
            assert lock_free_at_spawn == [True, True]
            with sup._lock:
                assert all(p.started for p in sup._procs.values())
        finally:
            self._drain(sup)

    def test_sweep_ignores_registered_but_unstarted_procs(self):
        """A slot between registration and _launch has pid None; the
        sweep must not treat it as dead and double-spawn."""
        sup, events = _stub_supervisor(workers=0)
        try:
            with sup._lock:
                slot, proc = sup._spawn_slot()
            proc.pid = None  # registered, not yet started
            sup._sweep()
            assert "worker.exit" not in events
            with sup._lock:
                assert slot in sup._procs
        finally:
            self._drain(sup)

    def test_stop_tolerates_unstarted_procs(self):
        """stop() racing a spawn must not crash on joining a process
        that was registered but never started."""
        from repro.serve.supervisor import WorkerSupervisor

        sup = WorkerSupervisor(
            settings={},
            workers=0,
            completion=lambda *args: None,
            listener=lambda name, **fields: None,
        )
        with sup._lock:
            sup._spawn_slot()  # real Process object, never started
        sup.stop()  # must not raise
        assert sup._stop.is_set()


# ----------------------------------------------------------------------
# Circuit breaker
# ----------------------------------------------------------------------


class TestCircuitBreaker:
    def test_opens_at_threshold(self):
        events = []
        breaker = CircuitBreaker(
            path=None, threshold=2, cooldown_seconds=60,
            listener=lambda name, **f: events.append((name, f)),
        )
        assert breaker.admit("s1") == STATE_CLOSED
        breaker.record_failure("s1")
        assert breaker.admit("s1") == STATE_CLOSED
        breaker.record_failure("s1")
        assert breaker.admit("s1") == STATE_OPEN
        assert breaker.retry_after("s1") > 0
        assert events == [("breaker.open", {"spec": "s1", "failures": 2})]

    def test_cooldown_admits_probe_then_reopens_or_closes(self):
        events = []
        breaker = CircuitBreaker(
            path=None, threshold=1, cooldown_seconds=0.05,
            listener=lambda name, **f: events.append(name),
        )
        breaker.record_failure("s1")
        assert breaker.admit("s1") == STATE_OPEN
        time.sleep(0.06)
        assert breaker.admit("s1") == STATE_PROBE
        # A failed probe waits out a whole new cooldown.
        breaker.record_failure("s1")
        assert breaker.admit("s1") == STATE_OPEN
        time.sleep(0.06)
        assert breaker.admit("s1") == STATE_PROBE
        breaker.record_success("s1")
        assert breaker.admit("s1") == STATE_CLOSED
        assert events == [
            "breaker.open", "breaker.probe", "breaker.probe",
            "breaker.close",
        ]

    def test_success_resets_failure_count(self):
        breaker = CircuitBreaker(path=None, threshold=3, cooldown_seconds=60)
        breaker.record_failure("s1")
        breaker.record_failure("s1")
        breaker.record_success("s1")
        breaker.record_failure("s1")
        assert breaker.admit("s1") == STATE_CLOSED

    def test_state_persists_across_instances(self, tmp_path):
        path = str(tmp_path / "breaker.json")
        first = CircuitBreaker(path=path, threshold=1, cooldown_seconds=3600)
        first.record_failure("s1")
        assert first.is_open("s1")
        second = CircuitBreaker(path=path, threshold=1, cooldown_seconds=3600)
        assert second.is_open("s1")
        assert second.admit("s1") == STATE_OPEN
        assert second.snapshot()["s1"]["open"] is True

    def test_corrupt_state_file_starts_closed(self, tmp_path):
        path = str(tmp_path / "breaker.json")
        with open(path, "w", encoding="utf-8") as handle:
            handle.write("{ not json")
        breaker = CircuitBreaker(path=path, threshold=1, cooldown_seconds=60)
        assert breaker.admit("anything") == STATE_CLOSED

    def test_torn_state_file_starts_closed_and_recovers(self, tmp_path):
        # Regression: a crash mid-write leaves a truncated-but-valid
        # JSON prefix on disk.  The breaker must treat the torn read
        # like a fresh start (no raise, closed state) and still be able
        # to persist new state over the damaged file.
        path = str(tmp_path / "breaker.json")
        writer = CircuitBreaker(path=path, threshold=1, cooldown_seconds=3600)
        writer.record_failure("s1")
        with open(path, "r", encoding="utf-8") as handle:
            full = handle.read()
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(full[: len(full) // 2])
        torn = CircuitBreaker(path=path, threshold=1, cooldown_seconds=3600)
        assert torn.admit("s1") == STATE_CLOSED
        assert torn.snapshot() == {}
        torn.record_failure("s2")
        healed = CircuitBreaker(path=path, threshold=1, cooldown_seconds=3600)
        assert healed.is_open("s2")


# ----------------------------------------------------------------------
# Response rendering
# ----------------------------------------------------------------------


class TestResponse:
    def test_body_renders_canonical_json(self):
        rendered = Response(status=200, body={"b": 1, "a": 2}).render()
        assert rendered == b'{"a":2,"b":1}\n'

    def test_raw_wins_over_body(self):
        rendered = Response(
            status=200, body={"ignored": True}, raw='{"x":1}\n'
        ).render()
        assert rendered == b'{"x":1}\n'


# ----------------------------------------------------------------------
# Service behavior (in-process, real worker processes)
# ----------------------------------------------------------------------


class TestServiceDedupe:
    def test_duplicates_execute_once_and_share_bytes(self, tmp_path):
        async def body(service):
            responses = await asyncio.gather(
                *(service.submit(dict(SUBMIT)) for _ in range(3))
            )
            return responses

        responses = run_service(tmp_path, body)
        assert [response.status for response in responses] == [200] * 3
        raws = {response.render() for response in responses}
        assert len(raws) == 1
        journal = str(tmp_path / "run.jsonl")
        running = [
            record for record in scan_records(journal)
            if record.status == "running"
        ]
        assert len(running) == 1, "duplicates must execute exactly once"

    def test_completed_specs_served_from_cache(self, tmp_path):
        async def body(service):
            first = await service.submit(dict(SUBMIT))
            second = await service.submit(dict(SUBMIT))
            return first, second, service.served

        first, second, served = run_service(tmp_path, body)
        assert first.render() == second.render()
        assert served == 2
        # The second submission hit the journal cache, not a worker.

    def test_cache_survives_restart_byte_identically(self, tmp_path):
        async def body(service):
            return await service.submit(dict(SUBMIT))

        first = run_service(tmp_path, body)

        async def body2(service):
            return await service.submit(dict(SUBMIT))

        second = run_service(tmp_path, body2)
        assert first.status == second.status == 200
        assert first.render() == second.render()

    def test_bad_submission_is_400(self, tmp_path):
        async def body(service):
            return (
                await service.submit({}),
                await service.submit({"workload": "bfs", "dataset": "x",
                                      "policy": "no-such-policy"}),
            )

        missing, bad_policy = run_service(tmp_path, body)
        assert missing.status == 400
        assert bad_policy.status == 400


class TestServiceAdmission:
    def test_queue_full_rejects_with_retry_after(self, tmp_path):
        # Deterministically occupy the only admission slot (a real cell
        # can finish faster than any sleep we could race against).
        async def body(service):
            service._inflight["occupied"] = {
                "spec": "occupied",
                "coords": {},
                "future": service.loop.create_future(),
                "waiters": 1,
            }
            rejected = await service.submit(dict(SUBMIT))
            service._resolve(
                "occupied", Response(status=500, body={"error": "test"})
            )
            return rejected, list(service.tracer.events)

        rejected, events = run_service(tmp_path, body, queue_depth=1)
        assert rejected.status == 429
        assert rejected.retry_after is not None and rejected.retry_after >= 1
        assert any(e["name"] == "queue.reject" for e in events)

    def test_draining_refuses_new_work(self, tmp_path):
        async def body(service):
            service.request_drain()
            assert service.drained.is_set()
            return await service.submit(dict(SUBMIT))

        response = run_service(tmp_path, body)
        assert response.status == 503
        assert "draining" in response.body["error"]

    def test_journal_error_degrades_to_cached_only(self, tmp_path):
        # enospc at the very first append: begin() fails, the ladder
        # drops straight to cached-only, nothing executes.
        async def body(service):
            first = await service.submit(dict(SUBMIT))
            second = await service.submit(
                {"workload": "pagerank", "dataset": "test-small"}
            )
            return first, second, service.mode, list(service.tracer.events)

        first, second, mode, events = run_service(
            tmp_path, body, chaos="enospc:append:1"
        )
        assert first.status == 503
        assert second.status == 503
        assert mode == MODE_CACHED_ONLY
        transitions = [e for e in events if e["name"] == "server.mode"]
        assert any(
            e["to_mode"] == MODE_CACHED_ONLY and e["reason"] == "journal-error"
            for e in transitions
        )

    def test_failing_spec_gets_quarantined(self, tmp_path):
        # cell_budget=1 makes every execution fail; threshold 2 opens
        # the breaker; the third submission is refused with retry-after.
        async def body(service):
            outcomes = []
            for _ in range(3):
                outcomes.append(await service.submit(dict(SUBMIT)))
            return outcomes, list(service.tracer.events)

        outcomes, events = run_service(
            tmp_path, body, cell_budget=1, breaker_threshold=2,
            breaker_cooldown_seconds=3600,
        )
        assert outcomes[0].status == 200  # failure is a recorded outcome
        assert outcomes[1].status == 200
        assert outcomes[2].status == 503
        assert outcomes[2].retry_after is not None
        assert any(e["name"] == "breaker.open" for e in events)

    def test_mode_ladder_is_one_way(self, tmp_path):
        async def body(service):
            service._set_mode(MODE_SERIAL, reason="test")
            service._set_mode(MODE_PARALLEL, reason="test")  # ignored
            assert service.mode == MODE_SERIAL
            service._set_mode(MODE_DRAINING, reason="test")
            service._set_mode(MODE_CACHED_ONLY, reason="test")  # ignored
            return service.mode

        assert run_service(tmp_path, body, workers=2) == MODE_DRAINING


class TestServiceEvents:
    def test_events_are_schema_valid(self, tmp_path):
        async def body(service):
            await service.submit(dict(SUBMIT))
            await service.submit(dict(SUBMIT))
            return service.status()

        status = run_service(tmp_path, body)
        assert status["schema_problems"] == []
        names = [event["name"] for event in status["events"]]
        assert "server.start" in names
        assert "queue.enqueue" in names
        assert "queue.cached" in names

    def test_status_shape(self, tmp_path):
        async def body(service):
            await service.submit(dict(SUBMIT))
            return service.status()

        status = run_service(tmp_path, body)
        assert status["mode"] in (MODE_SERIAL, MODE_PARALLEL)
        assert status["journal"]["done"] == 1
        assert status["served"] == 1
        assert status["inflight"] == 0
        assert isinstance(status["breaker"], dict)
        assert status["metrics"]["counters"]["event.server.start"] == 1


# ----------------------------------------------------------------------
# End to end over a real socket
# ----------------------------------------------------------------------


class TestServerRoundTrip:
    def test_submit_cache_status_drain(self, tmp_path):
        from repro.chaos.harness import ChaosServer

        server = ChaosServer(
            str(tmp_path), options={"workers": 1, "profile": "tiny"}
        )
        try:
            server.start()
            client = server.client()
            first = client.submit("bfs", "test-small")
            assert first.ok, first.body
            spec = first.body["spec"]
            again = client.submit("bfs", "test-small")
            assert again.raw == first.raw
            looked = client.result(spec)
            assert looked.raw == first.raw
            missing = client.result("0" * 16)
            assert missing.status == 404
            status = client.status()
            assert status["served"] == 3
            assert status["schema_problems"] == []
            drained = client.drain()
            assert drained.status == 202
            assert server.wait_exit() == 0
        finally:
            server.kill()

    def test_startup_failure_reports_stderr(self, tmp_path):
        from repro.chaos.harness import ChaosServer

        server = ChaosServer(
            str(tmp_path),
            options={"workers": 1, "profile": "no-such-profile"},
        )
        with pytest.raises(ChaosError, match="died during startup"):
            server.start(timeout=15)

    def test_restart_on_same_socket_after_sigkill(self, tmp_path):
        # Regression: a SIGKILLed server runs no atexit, so its socket
        # file survives; a restart on the same path must unlink the
        # stale socket itself rather than dying with EADDRINUSE.
        from repro.chaos.harness import ChaosServer

        first = ChaosServer(
            str(tmp_path), options={"workers": 1, "profile": "tiny"}
        )
        try:
            first.start()
            client = first.client()
            done = client.submit("bfs", "test-small")
            assert done.ok, done.body
            spec = done.body["spec"]
            first.kill()
            assert os.path.exists(first.socket_path)

            second = ChaosServer(
                str(tmp_path), options={"workers": 1, "profile": "tiny"}
            )
            try:
                second.start()
                again = second.client().result(spec)
                assert again.ok, again.body
                assert again.raw == done.raw
            finally:
                second.kill()
        finally:
            first.kill()
