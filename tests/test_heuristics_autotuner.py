"""Tests for the heuristic huge-page managers and the online autotuner."""

import numpy as np
import pytest

from repro.config import tiny
from repro.core.autotuner import OnlineAdvisor
from repro.graph.generators import power_law_graph, uniform_graph
from repro.machine.machine import Machine
from repro.mem.heuristics import (
    BloatControlManager,
    HotnessManager,
    UtilizationManager,
)
from repro.mem.thp import ThpMode, ThpPolicy
from repro.workloads.bfs import Bfs


@pytest.fixture
def graph():
    return power_law_graph(
        16384, 131072, alpha=1.0, hub_shuffle=1.0, seed=5
    )


def promotion_thp():
    """THP config for manager runs: no fault-time allocation, promotion
    only through the manager under test."""
    return ThpPolicy(
        mode=ThpMode.ALWAYS, fault_alloc=False, khugepaged_enabled=False
    )


def run_with_manager(graph, manager):
    machine = Machine(tiny(), promotion_thp())
    return machine.run(Bfs(graph), manager=manager)


class TestUtilizationManager:
    def test_promotes_utilized_chunks(self, graph):
        metrics = run_with_manager(graph, UtilizationManager())
        assert metrics.manager_promotions > 0
        assert metrics.huge_bytes > 0

    def test_threshold_blocks_sparse_chunks(self, graph):
        # Threshold above 1.0 is unreachable: nothing promotes.
        metrics = run_with_manager(
            graph, UtilizationManager(utilization_threshold=1.01)
        )
        assert metrics.manager_promotions == 0

    def test_rate_limit(self, graph):
        manager = UtilizationManager(promotions_per_pass=1)
        metrics = run_with_manager(graph, manager)
        # One promotion per BFS level at most.
        assert metrics.manager_promotions <= 64


class TestHotnessManager:
    def test_promotes_hottest_first(self, graph):
        """With a budget of few promotions, the property array (the
        pointer-indirect hot structure) must win them."""
        manager = HotnessManager(promotions_per_pass=1)
        machine = Machine(tiny(), promotion_thp())
        metrics = machine.run(Bfs(graph), manager=manager)
        fractions = metrics.huge_fraction_per_array
        assert fractions["property_array"] > 0.0
        # Property got at least its share before the huge edge array.
        assert (
            fractions["property_array"] >= fractions["edge_array"]
        )

    def test_improves_over_no_manager(self, graph):
        base = Machine(tiny(), ThpPolicy.never()).run(Bfs(graph))
        managed = run_with_manager(graph, HotnessManager())
        assert managed.speedup_over(base) > 1.05
        assert managed.walk_rate < base.walk_rate


class TestBloatControl:
    def test_demotes_underutilized(self):
        """Huge pages whose pages go cold get demoted."""
        graph = uniform_graph(16384, 65536, seed=3)
        machine = Machine(tiny(), ThpPolicy.always())
        manager = BloatControlManager(demote_utilization=1.01)
        # With an impossible utilization bar, every observed huge chunk
        # is "underutilized" and gets demoted.
        metrics = machine.run(Bfs(graph), manager=manager)
        assert metrics.manager_demotions > 0


class TestOnlineAdvisor:
    def test_targets_property_array_only(self, graph):
        advisor = OnlineAdvisor(warmup_iterations=1)
        machine = Machine(tiny(), promotion_thp())
        metrics = machine.run(Bfs(graph), manager=advisor)
        fractions = metrics.huge_fraction_per_array
        assert fractions["property_array"] > 0.0
        assert fractions["edge_array"] == 0.0
        assert fractions["vertex_array"] == 0.0

    def test_budget_cap(self, graph):
        advisor = OnlineAdvisor(max_chunks=1)
        machine = Machine(tiny(), promotion_thp())
        metrics = machine.run(Bfs(graph), manager=advisor)
        assert metrics.manager_promotions <= 1

    def test_speedup_without_preprocessing(self, graph):
        base = Machine(tiny(), ThpPolicy.never()).run(Bfs(graph))
        advisor = OnlineAdvisor()
        machine = Machine(tiny(), promotion_thp())
        metrics = machine.run(Bfs(graph), manager=advisor)
        assert metrics.preprocess_cycles == 0
        assert metrics.speedup_over(base) > 1.05

    def test_warmup_defers_promotion(self, graph):
        advisor = OnlineAdvisor(warmup_iterations=10_000)
        machine = Machine(tiny(), promotion_thp())
        metrics = machine.run(Bfs(graph), manager=advisor)
        assert metrics.manager_promotions == 0
