"""Tests for the core contribution: plans, advisor, selective helpers."""

import pytest

from repro.config import ConfigError, tiny
from repro.core.advisor import PageSizeAdvisor
from repro.core.plan import PlacementPlan
from repro.core.selective import huge_page_budget, selective_property_plan
from repro.graph.generators import power_law_graph
from repro.workloads.base import ARRAY_PROPERTY
from repro.workloads.layout import AllocationOrder


class TestPlacementPlan:
    def test_none_plan(self):
        plan = PlacementPlan.none()
        assert plan.advise_fractions == {}
        assert plan.order is AllocationOrder.NATURAL
        assert plan.reorder == "original"

    def test_fraction_validation(self):
        with pytest.raises(ConfigError):
            PlacementPlan(advise_fractions={ARRAY_PROPERTY: 0.0})
        with pytest.raises(ConfigError):
            PlacementPlan(advise_fractions={ARRAY_PROPERTY: 1.5})

    def test_advised_bytes(self):
        plan = PlacementPlan(advise_fractions={ARRAY_PROPERTY: 0.25})
        assert plan.advised_bytes({ARRAY_PROPERTY: 1000, 1: 500}) == 250

    def test_frozen(self):
        plan = PlacementPlan.none()
        with pytest.raises(AttributeError):
            plan.reorder = "dbg"


class TestSelectiveHelpers:
    def test_selective_plan(self):
        plan = selective_property_plan(0.4)
        assert plan.advise_fractions == {ARRAY_PROPERTY: 0.4}
        assert plan.order is AllocationOrder.PROPERTY_FIRST
        assert plan.reorder == "dbg"
        assert "40%" in plan.label

    def test_zero_fraction_means_no_advice(self):
        plan = selective_property_plan(0.0, reorder="original")
        assert plan.advise_fractions == {}

    def test_budget(self):
        assert huge_page_budget(10, 1000) == pytest.approx(0.01)
        assert huge_page_budget(1, 0) == 0.0


class TestAdvisor:
    def make_scattered(self):
        """Power-law graph with hubs scattered (Kronecker-like)."""
        return power_law_graph(
            16384, 131072, alpha=1.0, hub_shuffle=1.0, seed=21
        )

    def make_clustered(self):
        """Power-law graph with hubs at low ids (Twitter-like)."""
        return power_law_graph(16384, 131072, alpha=1.0, seed=21)

    def test_recommends_dbg_for_scattered_hubs(self):
        report = PageSizeAdvisor(
            self.make_scattered(), config=tiny()
        ).advise()
        assert report.reorder_recommended
        assert report.plan.reorder == "dbg"

    def test_skips_dbg_for_clustered_hubs(self):
        report = PageSizeAdvisor(
            self.make_clustered(), config=tiny()
        ).advise()
        assert not report.reorder_recommended
        assert report.plan.reorder == "original"
        assert report.natural_clustering > 0.6

    def test_coverage_target_met(self):
        report = PageSizeAdvisor(
            self.make_clustered(), config=tiny(), coverage_target=0.8
        ).advise()
        assert report.access_coverage >= 0.8

    def test_advise_fraction_is_small_for_skewed_graphs(self):
        """The whole point: a skewed graph's hot set needs only a small
        fraction of the property array."""
        report = PageSizeAdvisor(
            self.make_clustered(), config=tiny()
        ).advise()
        assert 0.0 < report.advise_fraction < 0.7
        assert report.plan.advise_fractions[ARRAY_PROPERTY] == pytest.approx(
            report.advise_fraction
        )

    def test_budget_fraction_tiny_relative_to_footprint(self):
        report = PageSizeAdvisor(
            self.make_clustered(), config=tiny()
        ).advise()
        assert report.budget_fraction < 0.2

    def test_plan_is_property_first(self):
        report = PageSizeAdvisor(self.make_clustered(), config=tiny()).advise()
        assert report.plan.order is AllocationOrder.PROPERTY_FIRST

    def test_huge_pages_needed_rounding(self):
        report = PageSizeAdvisor(self.make_clustered(), config=tiny()).advise()
        huge = tiny().pages.huge_page_size
        assert report.huge_pages_needed >= 1
        assert report.huge_pages_needed * huge >= int(
            report.advise_fraction * 16384 * 8 - huge
        )
