"""Unit tests for the dataset registry and graph I/O."""

import numpy as np
import pytest

from repro.errors import DatasetError, GraphError
from repro.graph.datasets import (
    DATASETS,
    EVALUATION_DATASETS,
    clear_dataset_cache,
    dataset_names,
    load_dataset,
)
from repro.graph.generators import uniform_graph
from repro.graph.io import (
    load_edge_list,
    load_npz,
    on_disk_bytes,
    save_edge_list,
    save_npz,
)


class TestRegistry:
    def test_evaluation_datasets_registered(self):
        for name in EVALUATION_DATASETS:
            assert name in DATASETS

    def test_load_by_alias(self):
        small = load_dataset("test-small")
        assert small.graph.num_vertices == 512
        assert load_dataset("test-small") is small  # cached

    def test_paper_aliases(self):
        spec = DATASETS["kron-s"]
        assert "Kr25" in spec.paper_name

    def test_unknown_dataset(self):
        with pytest.raises(DatasetError):
            load_dataset("no-such-graph")

    def test_weighted_variant_is_separate(self):
        a = load_dataset("test-small")
        b = load_dataset("test-small", weighted=True)
        assert a.graph.weights is None
        assert b.graph.weights is not None

    def test_clear_cache(self):
        a = load_dataset("test-small")
        clear_dataset_cache()
        b = load_dataset("test-small")
        assert a is not b

    def test_names(self):
        assert "kron-s" in dataset_names()


class TestScaledTable2:
    """The scaled datasets must preserve Table 2's relative shape."""

    @pytest.mark.slow
    def test_sizes(self):
        kron = load_dataset("kron-s").graph
        twitter = load_dataset("twitter-s").graph
        web = load_dataset("web-s").graph
        wiki = load_dataset("wiki-s").graph
        # Wikipedia is the smallest input, as in the paper.
        assert wiki.num_edges < min(
            kron.num_edges, twitter.num_edges, web.num_edges
        )
        # Twitter has the highest average degree of the big three.
        assert twitter.average_degree > kron.average_degree
        # Web has the most vertices of the crawls (tied with kron scale).
        assert web.num_vertices >= twitter.num_vertices


class TestIo:
    def test_npz_roundtrip(self, tmp_path, small_weighted_graph):
        path = str(tmp_path / "g.npz")
        save_npz(small_weighted_graph, path)
        loaded = load_npz(path)
        assert np.array_equal(loaded.indptr, small_weighted_graph.indptr)
        assert np.array_equal(loaded.indices, small_weighted_graph.indices)
        assert np.array_equal(loaded.weights, small_weighted_graph.weights)

    def test_npz_missing(self):
        with pytest.raises(GraphError):
            load_npz("/nonexistent/graph.npz")

    def test_edge_list_roundtrip(self, tmp_path):
        g = uniform_graph(32, 100, seed=2, weighted=True)
        path = str(tmp_path / "g.el")
        save_edge_list(g, path)
        loaded = load_edge_list(path, num_vertices=32)
        assert np.array_equal(loaded.indptr, g.indptr)
        assert np.array_equal(loaded.indices, g.indices)
        assert np.array_equal(loaded.weights, g.weights)

    def test_edge_list_comments_and_blanks(self, tmp_path):
        path = tmp_path / "g.el"
        path.write_text("# comment\n\n0 1\n1 2 7\n")
        with pytest.raises(GraphError):
            load_edge_list(str(path))  # mixed weighted/unweighted

    def test_edge_list_unweighted(self, tmp_path):
        path = tmp_path / "g.el"
        path.write_text("# c\n0 1\n1 0\n")
        g = load_edge_list(str(path))
        assert g.num_vertices == 2
        assert g.num_edges == 2

    def test_edge_list_malformed(self, tmp_path):
        path = tmp_path / "g.el"
        path.write_text("0 1 2 3\n")
        with pytest.raises(GraphError):
            load_edge_list(str(path))

    def test_on_disk_bytes(self):
        g = uniform_graph(10, 50, seed=1)
        assert on_disk_bytes(g) == (11 + 50) * 8
        gw = uniform_graph(10, 50, seed=1, weighted=True)
        assert on_disk_bytes(gw) == (11 + 50 + 50) * 8
