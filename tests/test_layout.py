"""Unit tests for memory layout and allocation order."""

import pytest

from repro.errors import WorkloadError
from repro.workloads.base import (
    ARRAY_EDGE,
    ARRAY_PROPERTY,
    ARRAY_RANK,
    ARRAY_VALUES,
    ARRAY_VERTEX,
)
from repro.workloads.bfs import Bfs
from repro.workloads.layout import (
    ELEMENT_BYTES,
    AllocationOrder,
    MemoryLayout,
)
from repro.workloads.pagerank import PageRank
from repro.workloads.sssp import Sssp


class TestNaturalOrder:
    def test_property_last(self, small_graph):
        layout = MemoryLayout(Bfs(small_graph))
        seq = [s.array_id for s in layout.allocation_sequence()]
        assert seq == [ARRAY_VERTEX, ARRAY_EDGE, ARRAY_PROPERTY]

    def test_sssp_values_before_property(self, small_weighted_graph):
        layout = MemoryLayout(Sssp(small_weighted_graph))
        seq = [s.array_id for s in layout.allocation_sequence()]
        assert seq == [
            ARRAY_VERTEX,
            ARRAY_EDGE,
            ARRAY_VALUES,
            ARRAY_PROPERTY,
        ]


class TestPropertyFirst:
    def test_property_hoisted(self, small_graph):
        layout = MemoryLayout(
            Bfs(small_graph), AllocationOrder.PROPERTY_FIRST
        )
        seq = [s.array_id for s in layout.allocation_sequence()]
        assert seq[0] == ARRAY_PROPERTY
        assert seq[1:] == [ARRAY_VERTEX, ARRAY_EDGE]

    def test_pagerank_rank_also_hoisted(self, small_graph):
        layout = MemoryLayout(
            PageRank(small_graph), AllocationOrder.PROPERTY_FIRST
        )
        seq = [s.array_id for s in layout.allocation_sequence()]
        assert seq[:2] == [ARRAY_PROPERTY, ARRAY_RANK]


class TestSizes:
    def test_total_bytes(self, small_graph):
        layout = MemoryLayout(Bfs(small_graph))
        v = small_graph.num_vertices
        e = small_graph.num_edges
        assert layout.total_bytes == ((v + 1) + e + v) * ELEMENT_BYTES

    def test_spec_lookup(self, small_graph):
        layout = MemoryLayout(Bfs(small_graph))
        spec = layout.spec(ARRAY_PROPERTY)
        assert spec.name == "property_array"
        assert spec.length_bytes == small_graph.num_vertices * ELEMENT_BYTES
        with pytest.raises(WorkloadError):
            layout.spec(ARRAY_VALUES)  # BFS has no values array
