"""Smoke tests for the runnable examples (slow: SCALED profile runs).

Each example must run to completion and print its key conclusions —
these are the library's advertised entry points, so they are tested
like any other deliverable.
"""

import pathlib
import subprocess
import sys

import pytest

pytestmark = pytest.mark.slow

EXAMPLES = pathlib.Path(__file__).parent.parent / "examples"


def run_example(name: str, *args: str) -> str:
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / name), *args],
        capture_output=True,
        text=True,
        timeout=600,
    )
    assert result.returncode == 0, result.stderr
    return result.stdout


def test_quickstart():
    out = run_example("quickstart.py")
    assert "THP speedup over 4KB pages" in out
    assert "DTLB miss rate" in out


def test_memory_pressure_study():
    out = run_example("memory_pressure_study.py", "wiki-s")
    assert "oversubscribed" in out
    assert "property-first" in out


def test_fragmentation_study():
    out = run_example("fragmentation_study.py", "wiki-s")
    assert "huge-backed" in out
    assert "abl-census" in out


def test_selective_thp_pipeline():
    out = run_example("selective_thp_pipeline.py", "wiki-s")
    assert "advisor report" in out
    assert "unbounded" in out


def test_custom_graph_advisor():
    out = run_example("custom_graph_advisor.py")
    assert "DBG recommended" in out or "DBG skipped" in out
    assert "plan speedup" in out


def test_online_autotuner():
    out = run_example("online_autotuner.py", "wiki-s")
    assert "online autotuner" in out
    assert "promotions at run time" in out
