"""Public API surface tests: everything the README and examples rely on
must be importable from the top-level package, and the error taxonomy
must be intact."""

import pytest

import repro
from repro.errors import (
    AddressError,
    AllocationError,
    ConfigError,
    DatasetError,
    ExperimentError,
    GraphError,
    OutOfMemoryError,
    ReproError,
    WorkloadError,
)


class TestTopLevelExports:
    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert getattr(repro, name) is not None, name

    def test_quickstart_surface(self):
        """The README quickstart's exact imports."""
        from repro import (
            Machine,
            ThpPolicy,
            create_workload,
            load_dataset,
        )

        data = load_dataset("test-small")
        machine = Machine(
            repro.tiny(), thp=ThpPolicy.always()
        )
        metrics = machine.run(
            create_workload("bfs", data.graph), dataset=data.name
        )
        summary = metrics.summary()
        assert summary["dataset"] == "test-small"

    def test_version(self):
        assert repro.__version__


class TestErrorTaxonomy:
    def test_all_derive_from_repro_error(self):
        for exc in (
            AddressError,
            AllocationError,
            ConfigError,
            DatasetError,
            ExperimentError,
            GraphError,
            OutOfMemoryError,
            WorkloadError,
        ):
            assert issubclass(exc, ReproError)

    def test_dataset_error_is_graph_error(self):
        assert issubclass(DatasetError, GraphError)

    def test_catchable_as_repro_error(self):
        with pytest.raises(ReproError):
            repro.load_dataset("definitely-not-a-dataset")
        with pytest.raises(ReproError):
            repro.get_profile("definitely-not-a-profile")
        with pytest.raises(ReproError):
            repro.create_workload("definitely-not-a-workload", None)
