"""Unit tests for the scenario tools: frag, memhog, background noise."""

import numpy as np
import pytest

from repro.errors import ConfigError, OutOfMemoryError
from repro.mem.frag import Fragmenter
from repro.mem.memhog import Memhog
from repro.mem.noise import BackgroundNoise
from repro.mem.physical import FrameState


class TestFragmenter:
    def test_level_zero_is_noop(self, node):
        frag = Fragmenter(node)
        assert frag.fragment(0.0) == 0
        assert node.fragmentation_level() == 0.0

    def test_level_bounds(self, node):
        frag = Fragmenter(node)
        with pytest.raises(ConfigError):
            frag.fragment(-0.1)
        with pytest.raises(ConfigError):
            frag.fragment(1.1)

    def test_half_fragmentation(self, node):
        frag = Fragmenter(node)
        regions = frag.fragment(0.5)
        assert regions == node.num_regions // 2
        # Each fragmented region keeps exactly one non-movable page.
        assert (
            np.count_nonzero(node.state == FrameState.NONMOVABLE) == regions
        )
        # Only one page per region was consumed.
        assert node.free_frame_count == node.num_frames - regions
        # The fragmentation metric reflects the paper's definition.
        assert node.fragmentation_level() == pytest.approx(
            regions * (node.frames_per_region - 1)
            / node.free_frame_count
        )

    def test_sentinels_are_nonmovable(self, node):
        frag = Fragmenter(node)
        frag.fragment(0.25)
        assert (
            node.state[frag.sentinel_frames] == FrameState.NONMOVABLE
        ).all()
        # Huge allocation cannot reclaim or compact those regions.
        owner = node.register_owner(frag)  # dummy owner id
        pristine_before = node.pristine_region_count()
        for _ in range(pristine_before):
            assert node.alloc_huge_region(owner) is not None
        assert node.alloc_huge_region(owner) is None

    def test_release(self, node):
        frag = Fragmenter(node)
        frag.fragment(0.5)
        frag.release()
        assert node.free_frame_count == node.num_frames

    def test_needs_pristine_regions(self, node):
        """Free memory without pristine regions cannot be fragmented."""
        hog = Memhog(node)
        huge = node.config.pages.huge_page_size
        hog.leave_free_bytes(2 * huge)
        # Poison the remaining free regions so none is pristine.
        BackgroundNoise(node).scatter(nonmovable_bytes=2 * huge)
        frag = Fragmenter(node)
        with pytest.raises(OutOfMemoryError):
            frag.fragment(1.0)


class TestMemhog:
    def test_occupy_pins(self, node):
        hog = Memhog(node)
        pages = hog.occupy_bytes(node.config.pages.huge_page_size)
        assert pages == node.frames_per_region
        assert (node.state[hog.frames] == FrameState.PINNED).all()

    def test_leave_free(self, node):
        hog = Memhog(node)
        target = 5 * node.config.pages.huge_page_size
        hog.leave_free_bytes(target)
        assert node.free_bytes == target

    def test_leave_free_more_than_available(self, node):
        hog = Memhog(node)
        assert hog.leave_free_bytes(node.free_bytes * 2) == 0

    def test_negative_rejected(self, node):
        with pytest.raises(ConfigError):
            Memhog(node).occupy_bytes(-1)

    def test_release(self, node):
        hog = Memhog(node)
        hog.occupy_bytes(node.free_bytes // 2)
        hog.release()
        assert node.free_frame_count == node.num_frames

    def test_pinned_blocks_huge_allocation_when_full(self, node):
        hog = Memhog(node)
        hog.leave_free_bytes(node.config.pages.base_page_size * 4)
        owner = node.register_owner(hog)
        assert node.alloc_huge_region(owner) is None


class TestBackgroundNoise:
    def test_nonmovable_poisons_regions(self, node):
        noise = BackgroundNoise(node)
        huge = node.config.pages.huge_page_size
        placed_nm, placed_m = noise.scatter(nonmovable_bytes=4 * huge)
        assert placed_nm == 4
        assert placed_m == 0
        # 4 regions are no longer pristine; only 4 pages consumed.
        assert node.pristine_region_count() == node.num_regions - 4
        assert node.free_frame_count == node.num_frames - 4

    def test_movable_noise_is_compactable(self, node):
        noise = BackgroundNoise(node)
        huge = node.config.pages.huge_page_size
        # Poison every region with movable noise.
        noise.scatter(movable_bytes=node.num_regions * huge)
        assert node.pristine_region_count() == 0
        owner = node.register_owner(noise)
        # Compaction can still assemble a region (migrating noise).
        assert node.alloc_huge_region(owner) is not None

    def test_nonmovable_noise_not_compactable(self, node):
        noise = BackgroundNoise(node)
        huge = node.config.pages.huge_page_size
        noise.scatter(nonmovable_bytes=node.num_regions * huge)
        owner = node.register_owner(noise)
        assert node.alloc_huge_region(owner) is None

    def test_capped_by_pristine_regions(self, node):
        noise = BackgroundNoise(node)
        huge = node.config.pages.huge_page_size
        placed_nm, _ = noise.scatter(
            nonmovable_bytes=10 * node.num_regions * huge
        )
        assert placed_nm == node.num_regions

    def test_release(self, node):
        noise = BackgroundNoise(node)
        huge = node.config.pages.huge_page_size
        noise.scatter(nonmovable_bytes=8 * huge, movable_bytes=4 * huge)
        noise.release()
        assert node.free_frame_count == node.num_frames

    def test_rejects_negative(self, node):
        with pytest.raises(ConfigError):
            BackgroundNoise(node).scatter(nonmovable_bytes=-1)
