"""Tests for run metrics and the kernel ledger."""

import pytest

from repro.config import CostModel
from repro.machine.metrics import RunMetrics
from repro.mem.stats import KernelLedger
from repro.mem.swap import SwapDevice
from repro.tlb.hierarchy import TranslationStats


class TestKernelLedger:
    def test_event_costing(self):
        cost = CostModel(minor_fault=100.0)
        ledger = KernelLedger(cost=cost)
        ledger.minor_fault(5)
        assert ledger.counts["minor_fault"] == 5
        assert ledger.cycles["minor_fault"] == 500
        assert ledger.total_cycles == 500

    def test_zero_count_ignored(self):
        ledger = KernelLedger(cost=CostModel())
        ledger.add("x", 0, 100.0)
        assert "x" not in ledger.counts

    def test_huge_fault_charges_prep(self):
        cost = CostModel(huge_fault_extra=1000.0, base_page_prep=10.0)
        ledger = KernelLedger(cost=cost)
        ledger.huge_fault(frames_per_huge=16)
        assert ledger.counts["huge_fault"] == 1
        assert ledger.counts["huge_prep_frames"] == 16
        assert ledger.total_cycles == 1000 + 160

    def test_promotion_includes_flush(self):
        ledger = KernelLedger(cost=CostModel())
        ledger.promotion(frames_per_huge=8)
        assert ledger.counts["promotions"] == 1
        assert ledger.counts["promotion_frames"] == 8
        assert ledger.counts["tlb_flush"] == 1

    def test_cycles_for_and_snapshot(self):
        ledger = KernelLedger(cost=CostModel())
        ledger.swap_in(2)
        ledger.swap_out(1)
        assert ledger.cycles_for("swap_in", "swap_out") == (
            ledger.cycles["swap_in"] + ledger.cycles["swap_out"]
        )
        snap = ledger.snapshot()
        assert snap["counts"]["swap_in"] == 2

    def test_merge(self):
        a = KernelLedger(cost=CostModel())
        b = KernelLedger(cost=CostModel())
        a.minor_fault(1)
        b.minor_fault(2)
        a.merge(b)
        assert a.counts["minor_fault"] == 3


class TestSwapDevice:
    def test_counters(self):
        dev = SwapDevice()
        dev.page_out(3)
        dev.page_in(2)
        assert dev.total_io == 5
        dev.reset()
        assert dev.total_io == 0


class TestRunMetrics:
    def make(self, compute=1000, init=100, pre=10):
        return RunMetrics(
            workload="bfs",
            policy_label="x",
            compute_cycles=compute,
            init_cycles=init,
            preprocess_cycles=pre,
        )

    def test_cycle_aggregates(self):
        m = self.make()
        assert m.total_cycles == 1110
        assert m.kernel_cycles == 1010

    def test_speedup(self):
        fast = self.make(compute=500, pre=0)
        slow = self.make(compute=1000, pre=0)
        assert fast.speedup_over(slow) == pytest.approx(2.0)

    def test_huge_footprint_fraction(self):
        m = self.make()
        m.footprint_bytes = 1000
        m.huge_bytes = 250
        assert m.huge_footprint_fraction == pytest.approx(0.25)
        m.footprint_bytes = 0
        assert m.huge_footprint_fraction == 0.0

    def test_rates_delegate_to_translation(self):
        m = self.make()
        stats = TranslationStats()
        stats.accesses[0] = 10
        stats.l1_misses[0] = 5
        stats.walks[0] = 2
        m.translation = stats
        assert m.dtlb_miss_rate == pytest.approx(0.5)
        assert m.walk_rate == pytest.approx(0.2)

    def test_summary_keys(self):
        summary = self.make().summary()
        for key in (
            "workload",
            "policy",
            "kernel_cycles",
            "dtlb_miss_rate",
            "huge_footprint_fraction",
        ):
            assert key in summary

    def test_per_array_translation(self):
        m = self.make()
        m.translation.accesses[3] = 7
        m.array_names = {3: "property_array"}
        assert m.per_array_translation()["property_array"]["accesses"] == 7
