"""Tests for the simulated process (translation) and the machine run
loop, on the TINY profile with small graphs."""

import numpy as np
import pytest

from repro.config import tiny
from repro.core.plan import PlacementPlan
from repro.graph.generators import uniform_graph
from repro.machine.machine import Machine
from repro.mem.thp import ThpPolicy
from repro.tlb.trace import AccessStream
from repro.workloads.base import ARRAY_EDGE, ARRAY_PROPERTY, ARRAY_VERTEX
from repro.workloads.bfs import Bfs
from repro.workloads.layout import AllocationOrder


@pytest.fixture
def graph():
    """Arrays must span multiple huge chunks on the TINY profile (64KB
    chunks = 8192 elements), so every array is THP-eligible."""
    return uniform_graph(num_vertices=16384, num_edges=65536, seed=9)


def run_machine(graph, thp, plan=None, **kwargs):
    machine = Machine(tiny(), thp)
    workload = Bfs(graph)
    return machine, machine.run(workload, plan=plan, **kwargs)


class TestTranslationKeys:
    def test_base_and_huge_keys(self, graph):
        """Property pages map to huge keys iff the VMM backed them huge."""
        machine = Machine(tiny(), ThpPolicy.madvise())
        workload = Bfs(graph)
        plan = PlacementPlan(
            advise_fractions={ARRAY_PROPERTY: 1.0}, label="p"
        )
        from repro.machine.process import SimProcess
        from repro.mem.vmm import VirtualMemoryManager
        from repro.workloads.layout import MemoryLayout

        vmm = VirtualMemoryManager(
            machine.app_node, machine.thp, machine.config
        )
        process = SimProcess(
            vmm, workload, MemoryLayout(workload), machine.config
        )
        process.allocate_and_touch(plan)
        stream = AccessStream(
            np.array([ARRAY_PROPERTY, ARRAY_EDGE], dtype=np.uint8),
            np.array([0, 0], dtype=np.int64),
        )
        trace = process.translate(stream)
        assert trace.keys[0] & 1 == 1  # property is huge-mapped
        assert trace.keys[1] & 1 == 0  # edge array stayed base
        # Huge key encodes the VMA's huge-page number.
        vma = process.vma_by_array[ARRAY_PROPERTY]
        assert trace.keys[0] >> 1 == vma.start >> machine.config.pages.huge_shift

    def test_distinct_arrays_distinct_pages(self, graph):
        machine = Machine(tiny(), ThpPolicy.never())
        workload = Bfs(graph)
        from repro.machine.process import SimProcess
        from repro.mem.vmm import VirtualMemoryManager
        from repro.workloads.layout import MemoryLayout

        vmm = VirtualMemoryManager(
            machine.app_node, machine.thp, machine.config
        )
        process = SimProcess(
            vmm, workload, MemoryLayout(workload), machine.config
        )
        process.allocate_and_touch(PlacementPlan.none())
        stream = AccessStream(
            np.array(
                [ARRAY_VERTEX, ARRAY_EDGE, ARRAY_PROPERTY], dtype=np.uint8
            ),
            np.zeros(3, dtype=np.int64),
        )
        trace = process.translate(stream)
        assert len(set(trace.keys.tolist())) == 3


class TestMachineRun:
    def test_metrics_consistency(self, graph):
        _, metrics = run_machine(graph, ThpPolicy.never(), dataset="t")
        assert metrics.dataset == "t"
        assert metrics.translation.total_accesses > 0
        assert metrics.compute_cycles > 0
        assert metrics.init_cycles > 0
        assert metrics.huge_bytes == 0
        assert metrics.total_cycles == (
            metrics.init_cycles
            + metrics.compute_cycles
            + metrics.preprocess_cycles
        )

    def test_thp_always_backs_everything(self, graph):
        _, metrics = run_machine(graph, ThpPolicy.always())
        fractions = metrics.huge_fraction_per_array
        # The vertex array (2 base pages) is smaller than one huge chunk
        # and therefore never eligible; the large arrays must be backed.
        assert fractions["edge_array"] > 0.8
        assert fractions["property_array"] > 0.8
        assert metrics.huge_footprint_fraction > 0.6

    def test_thp_faster_than_base_when_footprint_exceeds_tlb(self, graph):
        _, base = run_machine(graph, ThpPolicy.never())
        _, thp = run_machine(graph, ThpPolicy.always())
        assert thp.speedup_over(base) > 1.02
        assert thp.walk_rate < base.walk_rate

    def test_madvise_plan_limits_huge_usage(self, graph):
        plan = PlacementPlan(
            advise_fractions={ARRAY_PROPERTY: 1.0}, label="sel"
        )
        _, metrics = run_machine(graph, ThpPolicy.madvise(), plan=plan)
        fractions = metrics.huge_fraction_per_array
        assert fractions["property_array"] == 1.0
        assert fractions["edge_array"] == 0.0
        assert fractions["vertex_array"] == 0.0

    def test_partial_madvise_fraction(self, graph):
        plan = PlacementPlan(
            advise_fractions={ARRAY_PROPERTY: 0.5}, label="half"
        )
        _, metrics = run_machine(graph, ThpPolicy.madvise(), plan=plan)
        assert 0.2 < metrics.huge_fraction_per_array["property_array"] <= 0.8

    def test_machine_state_restored_between_runs(self, graph):
        machine = Machine(tiny(), ThpPolicy.always())
        before = machine.free_bytes()
        machine.run(Bfs(graph))
        assert machine.free_bytes() == before
        metrics_a = machine.run(Bfs(graph))
        metrics_b = machine.run(Bfs(graph))
        assert metrics_a.kernel_cycles == metrics_b.kernel_cycles

    def test_load_bytes_local_consumes_app_node(self, graph):
        machine = Machine(tiny(), ThpPolicy.never())
        free = machine.free_bytes()
        metrics = machine.run(
            Bfs(graph), load_bytes=65536, tmpfs_remote=False
        )
        # Cache evicted at end of run; during the run it was local.
        assert machine.free_bytes() == free
        assert metrics.init_cycles > 0

    def test_preprocess_accesses_charged(self, graph):
        machine = Machine(tiny(), ThpPolicy.never())
        metrics = machine.run(Bfs(graph), preprocess_accesses=1000)
        assert metrics.preprocess_cycles == int(
            1000 * machine.config.cost.mem_access
        )

    def test_allocation_order_recorded_in_layout(self, graph):
        plan = PlacementPlan(
            order=AllocationOrder.PROPERTY_FIRST, label="opt"
        )
        machine = Machine(tiny(), ThpPolicy.always())
        metrics = machine.run(Bfs(graph), plan=plan)
        assert metrics.policy_label == "opt"


class TestOversubscription:
    @pytest.fixture
    def big_graph(self):
        """Large enough that a 16-page deficit leaves plenty resident."""
        return uniform_graph(num_vertices=4096, num_edges=32768, seed=2)

    def test_swap_dominates(self, big_graph):
        machine = Machine(tiny(), ThpPolicy.never())
        workload = Bfs(big_graph)
        from repro.workloads.layout import MemoryLayout

        wss = MemoryLayout(workload).total_bytes
        machine.memhog_leave_free(wss - 16 * 4096)  # 16-page deficit
        machine.finish_setup()
        metrics = machine.run(workload)
        assert metrics.swap_ins > 0
        fresh = Machine(tiny(), ThpPolicy.never()).run(Bfs(big_graph))
        assert metrics.kernel_cycles > 3 * fresh.kernel_cycles

    def test_swap_accounting_in_ledger(self, big_graph):
        machine = Machine(tiny(), ThpPolicy.never())
        workload = Bfs(big_graph)
        from repro.workloads.layout import MemoryLayout

        wss = MemoryLayout(workload).total_bytes
        machine.memhog_leave_free(wss - 16 * 4096)
        machine.finish_setup()
        metrics = machine.run(workload)
        assert metrics.compute_kernel["counts"].get("swap_in", 0) > 0
        assert machine.swap.total_io > 0


class TestScenarioHelpers:
    def test_memhog_and_fragment(self, graph):
        machine = Machine(tiny(), ThpPolicy.always())
        machine.memhog_leave_free(machine.free_bytes() // 2)
        machine.fragment(0.5)
        assert machine.fragmentation_level() > 0.3
        machine.finish_setup()
        assert machine.physical.ledger.total_cycles == 0
