"""Tests for the resilient experiment harness: retries, budgets,
graceful degradation into :class:`CellFailure`, and the cache fixes."""

from dataclasses import replace

import pytest

from repro.config import scaled, tiny
from repro.errors import (
    CellBudgetExceededError,
    ExperimentError,
    InjectedFaultError,
    OutOfMemoryError,
)
from repro.faults import FaultPlan
from repro.experiments.figures import fig07_pressure_alloc_order
from repro.experiments.harness import (
    RETRY_BACKOFF_BASE_CYCLES,
    CellFailure,
    ExperimentRunner,
    retry_backoff_cycles,
)
from repro.experiments.policies import POLICIES
from repro.experiments.scenarios import constrained, fresh, oversubscribed


@pytest.fixture
def runner():
    """A TINY-profile runner over the fast test dataset."""
    return ExperimentRunner(
        config=tiny(), datasets=("test-small",), pagerank_iterations=2
    )


def run_bfs(runner, policy="base4k", scenario=None):
    return runner.run_cell(
        "bfs", "test-small", POLICIES[policy], scenario or fresh()
    )


class TestCacheFixes:
    def test_clear_cache_drops_both_caches(self, runner):
        """Regression: clear_cache() used to leave _graph_cache behind."""
        run_bfs(runner)
        assert runner._cache and runner._graph_cache
        runner.clear_cache()
        assert runner._cache == {}
        assert runner._graph_cache == {}

    def test_unknown_reordering_suppresses_context(self, runner):
        with pytest.raises(ExperimentError) as exc:
            runner._prepared_graph("test-small", "bogus", weighted=False)
        assert "unknown reordering" in str(exc.value)
        # `raise ... from None`: the internal KeyError is not chained.
        assert exc.value.__suppress_context__
        assert exc.value.__cause__ is None


class TestRetries:
    def test_backoff_is_exponential(self):
        assert retry_backoff_cycles(1) == RETRY_BACKOFF_BASE_CYCLES
        assert retry_backoff_cycles(3) == 4 * RETRY_BACKOFF_BASE_CYCLES

    def test_transient_glitch_survived_by_retry(self, runner):
        # staging fires once (max=1): attempt 1 dies, attempt 2 passes.
        runner.fault_plan = FaultPlan.parse("staging:1.0:max=1")
        metrics = run_bfs(runner)
        assert metrics.ok
        assert metrics.attempts == 2
        assert metrics.retry_cycles == RETRY_BACKOFF_BASE_CYCLES
        assert metrics.kernel_cycles > 0

    def test_retry_backoff_charged_to_kernel_time(self, runner):
        baseline = run_bfs(runner)
        retried_runner = ExperimentRunner(
            config=tiny(),
            fault_plan=FaultPlan.parse("staging:1.0:max=1"),
        )
        retried = run_bfs(retried_runner)
        assert (
            retried.kernel_cycles
            == baseline.kernel_cycles + RETRY_BACKOFF_BASE_CYCLES
        )

    def test_retries_exhausted_becomes_cell_failure(self, runner):
        runner.fault_plan = FaultPlan.parse("staging:1.0")
        result = run_bfs(runner)
        assert isinstance(result, CellFailure)
        assert not result.ok
        assert result.attempts == runner.max_retries + 1
        assert result.site is not None and result.site.value == "staging"
        assert result.error == "InjectedFaultError"
        assert result.label == "FAILED(staging)"
        assert runner.failures == [result]

    def test_strict_mode_propagates(self, runner):
        runner.fault_plan = FaultPlan.parse("staging:1.0")
        runner.capture_failures = False
        with pytest.raises(InjectedFaultError):
            run_bfs(runner)

    def test_failure_is_cached(self, runner):
        runner.fault_plan = FaultPlan.parse("staging:1.0")
        first = run_bfs(runner)
        second = run_bfs(runner)
        assert first is second
        assert len(runner.failures) == 1

    def test_fault_plan_in_cache_key(self, runner):
        clean = run_bfs(runner)
        runner.fault_plan = FaultPlan.parse("staging:1.0")
        faulted = run_bfs(runner)
        assert clean.ok and not faulted.ok


class TestDeterministicFailures:
    def test_budget_overrun_not_retried(self, runner):
        runner.cell_budget = 10
        result = run_bfs(runner)
        assert isinstance(result, CellFailure)
        assert result.error == "CellBudgetExceededError"
        assert result.attempts == 1  # deterministic: no retry
        assert result.label == "FAILED(CellBudgetExceededError)"

    def test_budget_in_cache_key(self, runner):
        assert run_bfs(runner).ok
        runner.cell_budget = 10
        assert not run_bfs(runner).ok

    def test_oom_captured_from_pressured_cell(self):
        runner = ExperimentRunner(
            config=replace(tiny(), swap_enabled=False),
            datasets=("test-small",),
        )
        result = run_bfs(runner, scenario=oversubscribed(0.5))
        assert isinstance(result, CellFailure)
        assert result.error == "OutOfMemoryError"
        assert result.attempts == 1

    def test_oom_propagates_in_strict_mode(self):
        runner = ExperimentRunner(
            config=replace(tiny(), swap_enabled=False),
            datasets=("test-small",),
            capture_failures=False,
        )
        with pytest.raises(OutOfMemoryError):
            run_bfs(runner, scenario=oversubscribed(0.5))

    def test_budget_error_from_machine_level(self, small_graph):
        from repro.machine.machine import Machine
        from repro.workloads.registry import create_workload

        machine = Machine(tiny())
        with pytest.raises(CellBudgetExceededError):
            machine.run(
                create_workload("bfs", small_graph), access_budget=10
            )


class TestCellFailureAbsorption:
    def make_failure(self):
        return CellFailure(
            workload="bfs", dataset="test-small", policy="thp",
            scenario="fresh", error="InjectedFaultError", message="boom",
        )

    def test_metric_access_absorbs(self):
        failure = self.make_failure()
        assert failure.kernel_cycles is failure
        assert failure.speedup_over(failure) is failure
        assert failure.summary() is failure
        assert failure.huge_fraction_per_array == {}

    def test_arithmetic_and_comparisons(self):
        failure = self.make_failure()
        assert (failure / 3) is failure
        assert (2.0 * failure) is failure
        assert round(failure, 3) is failure
        # Failures rank after every number: sorted() pushes them last.
        assert failure > 1 and not failure < 1
        assert failure >= 10**12 and not failure <= -(10**12)
        assert sorted([failure, 2.0, 1.0])[-1] is failure
        assert list(failure) == []

    def test_failures_sort_last_and_deterministically(self):
        a = self.make_failure()
        b = CellFailure(
            workload="sssp", dataset="web-l", policy="thp",
            scenario="fresh", error="OutOfMemoryError", message="oom",
        )
        # Among failures: stable cell-coordinate ordering, both ways.
        assert (a < b) == (b > a) and (a < b) != (a > b)
        assert sorted([b, 3.5, a, 1.0])[:2] == [1.0, 3.5]
        assert sorted([b, 3.5, a, 1.0])[2:] == sorted([a, b], key=lambda f: f._order_key())

    def test_renders_as_failed_marker(self):
        assert str(self.make_failure()) == "FAILED(InjectedFaultError)"


class TestGracefulFigureBatch:
    """The ISSUE's acceptance scenario: fig07 with compaction:1.0."""

    def test_fig07_completes_with_partial_data(self):
        plan = FaultPlan.parse("compaction:1.0")
        faulted = ExperimentRunner(fault_plan=plan)
        result = fig07_pressure_alloc_order(
            faulted, workloads=("bfs",), datasets=("test-small",)
        )
        # The batch completed and rendered despite failing cells.
        (row,) = result.rows
        rendered = result.render()
        assert "FAILED(compaction)" in rendered
        failed = result.failed_cells()
        assert failed and all(
            f.site.value == "compaction" for f in failed
        )
        assert all(f.scenario.startswith("constrained") for f in failed)
        # JSON export degrades to marker strings instead of crashing.
        assert '"FAILED(compaction)"' in result.to_json()

        # Unaffected cells are bit-for-bit identical to a no-fault run.
        clean = ExperimentRunner()
        clean_result = fig07_pressure_alloc_order(
            clean, workloads=("bfs",), datasets=("test-small",)
        )
        (clean_row,) = clean_result.rows
        for column in ("base4k_pressured", "thp_ideal"):
            assert row[column] == clean_row[column]
        # And the underlying unaffected cell metrics match exactly.
        base = run_bfs(clean, scenario=constrained(0.5))
        base_faulted = run_bfs(faulted, scenario=constrained(0.5))
        assert base.summary() == base_faulted.summary()
        assert (
            base.per_array_translation()
            == base_faulted.per_array_translation()
        )
