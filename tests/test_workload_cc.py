"""Correctness tests for the Connected Components extension workload."""

import networkx as nx
import numpy as np

from repro.graph.csr import CsrGraph
from repro.graph.generators import uniform_graph
from repro.workloads.cc import ConnectedComponents, symmetrize


def drain(workload):
    for _ in workload.run():
        pass


class TestSymmetrize:
    def test_doubles_edges(self, small_graph):
        sym = symmetrize(small_graph)
        assert sym.num_edges == 2 * small_graph.num_edges

    def test_contains_both_directions(self):
        g = CsrGraph.from_edges(np.array([0]), np.array([1]), 2)
        sym = symmetrize(g)
        assert 1 in sym.neighbors(0)
        assert 0 in sym.neighbors(1)


class TestConnectedComponents:
    def test_two_components(self):
        # 0-1-2 chain, 3-4 pair (directed arbitrarily).
        g = CsrGraph.from_edges(
            np.array([0, 2, 4]), np.array([1, 1, 3]), 5
        )
        cc = ConnectedComponents(g)
        drain(cc)
        labels = cc.result()
        assert labels[0] == labels[1] == labels[2] == 0
        assert labels[3] == labels[4] == 3
        assert cc.num_components() == 2

    def test_matches_networkx_weakly_connected(self, small_graph):
        cc = ConnectedComponents(small_graph)
        drain(cc)
        labels = cc.result()
        g = nx.DiGraph()
        g.add_nodes_from(range(small_graph.num_vertices))
        src, dst = small_graph.edge_endpoints()
        g.add_edges_from(zip(src.tolist(), dst.tolist()))
        components = list(nx.weakly_connected_components(g))
        assert cc.num_components() == len(components)
        for component in components:
            component_labels = {int(labels[v]) for v in component}
            assert len(component_labels) == 1
            assert min(component) in component_labels

    def test_isolated_vertices_are_singletons(self):
        g = CsrGraph.from_edges(np.array([0]), np.array([1]), 4)
        cc = ConnectedComponents(g)
        drain(cc)
        assert cc.num_components() == 3

    def test_label_is_min_id(self, small_graph):
        cc = ConnectedComponents(small_graph)
        drain(cc)
        labels = cc.result()
        for v in range(small_graph.num_vertices):
            assert labels[v] <= v

    def test_footprint_uses_symmetrized_edges(self, small_graph):
        from repro.workloads.base import ARRAY_EDGE

        cc = ConnectedComponents(small_graph)
        assert cc.array_elements(ARRAY_EDGE) == 2 * small_graph.num_edges

    def test_trace_nonempty_and_terminates(self):
        g = uniform_graph(256, 1024, seed=8)
        cc = ConnectedComponents(g)
        total = sum(len(s) for s in cc.run())
        assert total > 0
        assert cc.iterations >= 1
