"""Shared fixtures for the test suite.

Most tests run on the TINY machine profile (4MB nodes, 64KB "huge"
pages) and small graphs so the whole suite stays fast; integration tests
that must exhibit the paper's TLB-pressure regime use the SCALED profile
with mid-size graphs and are marked ``slow``.
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.analysis.locksan import get_locksan, set_locksan
from repro.analysis.sanitizer import set_sanitize
from repro.config import MachineConfig, scaled, tiny
from repro.graph.csr import CsrGraph
from repro.graph.generators import path_graph, power_law_graph, uniform_graph
from repro.mem.physical import NodeMemory, PhysicalMemory
from repro.mem.stats import KernelLedger


def pytest_configure(config):
    config.addinivalue_line(
        "markers", "slow: integration tests on the SCALED profile"
    )


@pytest.fixture(autouse=True)
def _enable_memsan():
    """Run the whole suite under MemSan.

    Every Machine/PhysicalMemory a test constructs gets the sanitizer
    attached, so the existing suite doubles as an invariant stress test.
    ``REPRO_SANITIZE=0`` in the environment opts out (used to bisect
    whether a failure is a broken invariant or a broken check), and
    tests can still force either way via ``Machine(sanitize=...)`` or
    ``set_sanitize``.
    """
    if os.environ.get("REPRO_SANITIZE", "").strip().lower() in ("0", "false"):
        yield
        return
    previous = set_sanitize(True)
    try:
        yield
    finally:
        set_sanitize(previous)


@pytest.fixture(autouse=True)
def _enable_locksan():
    """Run the whole suite under LockSan when ``REPRO_LOCKSAN=1``.

    Opt-in (unlike MemSan) because it swaps instrumented classes under
    the supervised objects; CI runs the suite once with it on.  While
    enabled, every test additionally asserts that no dynamic lock-
    discipline violation was observed during the test — the suite
    doubles as an Eraser-style stress test of the serve stack.
    """
    if os.environ.get("REPRO_LOCKSAN", "").strip().lower() in (
        "", "0", "false",
    ):
        yield
        return
    previous = set_locksan(True)
    san = get_locksan()
    san.reset()
    try:
        yield
    finally:
        set_locksan(previous)
        violations = san.report()
        san.reset()
        assert not violations, [v.render() for v in violations]


@pytest.fixture
def tiny_cfg() -> MachineConfig:
    """The TINY machine profile."""
    return tiny()


@pytest.fixture
def scaled_cfg() -> MachineConfig:
    """The SCALED machine profile."""
    return scaled()


@pytest.fixture
def node(tiny_cfg) -> NodeMemory:
    """A fresh TINY-profile NUMA node."""
    ledger = KernelLedger(cost=tiny_cfg.cost)
    return NodeMemory(0, tiny_cfg, ledger)


@pytest.fixture
def physical(tiny_cfg) -> PhysicalMemory:
    """A fresh TINY-profile machine's physical memory."""
    return PhysicalMemory(tiny_cfg)


@pytest.fixture
def small_graph() -> CsrGraph:
    """A 256-vertex uniform random graph."""
    return uniform_graph(num_vertices=256, num_edges=2048, seed=3)


@pytest.fixture
def small_weighted_graph() -> CsrGraph:
    """A 256-vertex uniform random weighted graph."""
    return uniform_graph(num_vertices=256, num_edges=2048, seed=3,
                         weighted=True)


@pytest.fixture
def skewed_graph() -> CsrGraph:
    """A power-law graph with hot hubs scattered by shuffling."""
    return power_law_graph(
        num_vertices=2048,
        num_edges=16384,
        alpha=1.0,
        hub_shuffle=1.0,
        seed=11,
    )


@pytest.fixture
def line_graph() -> CsrGraph:
    """A 16-vertex directed path (deterministic oracle)."""
    return path_graph(16)


def assert_perm(perm: np.ndarray, n: int) -> None:
    """Assert ``perm`` is a permutation of 0..n-1."""
    assert perm.shape == (n,)
    assert np.array_equal(np.sort(perm), np.arange(n))
