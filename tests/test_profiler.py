"""Unit tests for the page-access profiler."""

import numpy as np
import pytest

from repro.config import tiny
from repro.mem.thp import ThpPolicy
from repro.mem.profiler import PageProfiler
from repro.mem.vmm import VirtualMemoryManager
from repro.tlb.trace import compress_trace


@pytest.fixture
def setup(node, tiny_cfg):
    vmm = VirtualMemoryManager(node, ThpPolicy.never(), tiny_cfg)
    vma = vmm.mmap("property_array", 2 * tiny_cfg.pages.huge_page_size)
    vmm.touch(vma)
    profiler = PageProfiler(tiny_cfg)
    profiler.track(vma)
    return vmm, vma, profiler


def trace_for(vma, pages, counts, tiny_cfg, huge=False):
    shift = (
        tiny_cfg.pages.huge_shift if huge else tiny_cfg.pages.base_shift
    )
    start = vma.start >> shift
    keys = ((np.asarray(pages, dtype=np.int64) + start) << 1) | int(huge)
    raw_keys = np.repeat(keys, counts)
    aids = np.full(raw_keys.size, 3, dtype=np.uint8)
    return compress_trace(raw_keys, aids)


class TestObserve:
    def test_base_page_counts(self, setup, tiny_cfg):
        vmm, vma, profiler = setup
        trace = trace_for(vma, [0, 1, 0], [2, 1, 3], tiny_cfg)
        profiler.observe(trace, {3: vma})
        counts = profiler.page_counts(vma)
        assert counts[0] == 5
        assert counts[1] == 1
        assert profiler.total_observed == 6

    def test_huge_accesses_attributed_to_chunk(self, setup, tiny_cfg):
        vmm, vma, profiler = setup
        vmm.policy = ThpPolicy.always()
        trace = trace_for(vma, [1], [4], tiny_cfg, huge=True)
        profiler.observe(trace, {3: vma})
        assert profiler.chunk_counts(vma)[1] == 4

    def test_untracked_arrays_ignored(self, setup, tiny_cfg):
        vmm, vma, profiler = setup
        other = vmm.mmap("edge_array", 4096)
        vmm.touch(other)
        trace = trace_for(other, [0], [7], tiny_cfg)
        profiler.observe(trace, {3: other})
        assert profiler.total_observed == 7  # counted in total...
        assert profiler.page_counts(vma).sum() == 0  # ...but not to vma


class TestQueries:
    def test_chunk_counts_sum_pages(self, setup, tiny_cfg):
        vmm, vma, profiler = setup
        fph = tiny_cfg.pages.frames_per_huge
        trace = trace_for(vma, [0, 1, fph], [1, 2, 4], tiny_cfg)
        profiler.observe(trace, {3: vma})
        chunks = profiler.chunk_counts(vma)
        assert chunks[0] == 3
        assert chunks[1] == 4

    def test_utilization(self, setup, tiny_cfg):
        vmm, vma, profiler = setup
        fph = tiny_cfg.pages.frames_per_huge
        # Touch half of chunk 0's pages.
        trace = trace_for(vma, list(range(fph // 2)), [1] * (fph // 2),
                          tiny_cfg)
        profiler.observe(trace, {3: vma})
        util = profiler.chunk_utilization(vma)
        assert util[0] == pytest.approx(0.5)
        assert util[1] == 0.0

    def test_hottest_chunks(self, setup, tiny_cfg):
        vmm, vma, profiler = setup
        fph = tiny_cfg.pages.frames_per_huge
        trace = trace_for(vma, [0, fph], [1, 10], tiny_cfg)
        profiler.observe(trace, {3: vma})
        assert profiler.hottest_chunks(vma).tolist()[:2] == [1, 0]

    def test_reset(self, setup, tiny_cfg):
        vmm, vma, profiler = setup
        trace = trace_for(vma, [0], [5], tiny_cfg)
        profiler.observe(trace, {3: vma})
        profiler.reset()
        assert profiler.page_counts(vma).sum() == 0
        assert profiler.total_observed == 0
