"""Unit tests for DBG and baseline reorderings."""

import numpy as np
import pytest

from repro.errors import GraphError
from repro.graph.csr import CsrGraph
from repro.graph.generators import power_law_graph
from repro.graph.reorder import (
    DBG_COST,
    DBG_DEFAULT_THRESHOLDS,
    ORDERINGS,
    apply_order,
    dbg_bin_sizes,
    dbg_order,
    degree_sort_order,
    identity_order,
    random_order,
)


def star_graph(leaves: int) -> CsrGraph:
    """All leaves point at vertex `leaves` (the hub has max in-degree)."""
    src = np.arange(leaves, dtype=np.int64)
    dst = np.full(leaves, leaves, dtype=np.int64)
    return CsrGraph.from_edges(src, dst, leaves + 1)


class TestDbgOrder:
    def test_hub_moves_to_front(self):
        g = star_graph(64)
        perm = dbg_order(g)
        assert perm[64] == 0  # the hub gets the first new id

    def test_stable_within_bins(self):
        """Cold vertices keep their relative order (structure
        preservation is what makes DBG lightweight)."""
        g = star_graph(64)
        perm = dbg_order(g)
        cold_new_ids = perm[:64]
        assert (np.diff(cold_new_ids) > 0).all()

    def test_default_thresholds(self):
        assert DBG_DEFAULT_THRESHOLDS == (32.0, 16.0, 8.0, 4.0, 2.0, 1.0,
                                          0.5, 0.0)

    def test_threshold_validation(self):
        g = star_graph(4)
        with pytest.raises(GraphError):
            dbg_order(g, thresholds=(4.0, 2.0))  # missing catch-all
        with pytest.raises(GraphError):
            dbg_order(g, thresholds=(2.0, 4.0, 0.0))  # not decreasing

    def test_out_degree_variant(self):
        g = star_graph(8)
        perm = dbg_order(g, use_in_degree=False)
        # By out-degree all leaves are equal (1) and the hub is coldest.
        assert perm[8] == 8

    def test_majority_in_last_bin_for_power_law(self):
        """The paper: 'a majority of vertices occupy the last bin'."""
        g = power_law_graph(4096, 32768, alpha=1.0, seed=5)
        bins = dbg_bin_sizes(g)
        assert bins[-1] + bins[-2] > g.num_vertices / 2

    def test_dbg_concentrates_hot_prefix(self):
        """After DBG, the leading ids must cover far more accesses than
        before on a shuffled power-law graph."""
        g = power_law_graph(
            2048, 16384, alpha=1.0, hub_shuffle=1.0, seed=6
        )
        ins = g.in_degrees()
        prefix = 2048 // 10
        before = ins[:prefix].sum() / g.num_edges
        perm = dbg_order(g)
        reordered = apply_order(g, perm)
        after = reordered.in_degrees()[:prefix].sum() / g.num_edges
        assert after > before + 0.2

    def test_cost_model(self):
        assert DBG_COST.vertex_traversals == 3
        assert DBG_COST.accesses(100, 1000) == 300


class TestBaselines:
    def test_identity(self):
        g = star_graph(4)
        assert np.array_equal(identity_order(g), np.arange(5))

    def test_degree_sort_puts_hub_first(self):
        g = star_graph(16)
        perm = degree_sort_order(g)
        assert perm[16] == 0

    def test_random_deterministic_per_seed(self):
        g = star_graph(16)
        assert np.array_equal(random_order(g, 3), random_order(g, 3))
        assert not np.array_equal(random_order(g, 3), random_order(g, 4))

    def test_orderings_registry(self):
        g = star_graph(8)
        for name, make in ORDERINGS.items():
            perm = make(g)
            assert np.array_equal(np.sort(perm), np.arange(9)), name
