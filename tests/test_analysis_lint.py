"""Tests for the repro.analysis.lint static-analysis pass.

Each REP rule gets a positive fixture (the violation fires), a negative
fixture (the compliant spelling stays quiet) and a suppression fixture
(``# repro: noqa`` silences it).  The project-wide REP004 rule is
exercised over a small on-disk tree.
"""

from __future__ import annotations

import json

import pytest

from repro.analysis import ALL_RULES, RULE_SUMMARIES, lint_paths, lint_text
from repro.analysis.__main__ import main as lint_main
from repro.analysis.noqa import Suppressions


def rules_of(source: str, relpath: str = "mod.py") -> list[str]:
    return [f.rule for f in lint_text(source, relpath)]


# ----------------------------------------------------------------------
# REP001 — nondeterminism sources
# ----------------------------------------------------------------------


class TestRep001:
    def test_wall_clock(self):
        assert rules_of("import time\nt = time.time()\n") == ["REP001"]

    def test_datetime_now(self):
        src = "import datetime\nd = datetime.datetime.now()\n"
        assert rules_of(src) == ["REP001"]

    def test_os_urandom(self):
        assert rules_of("import os\nb = os.urandom(8)\n") == ["REP001"]

    def test_global_random(self):
        assert rules_of("import random\nx = random.random()\n") == ["REP001"]

    def test_numpy_legacy_global_rng(self):
        src = "import numpy as np\nx = np.random.rand(4)\n"
        assert rules_of(src) == ["REP001"]

    def test_alias_resolution(self):
        src = "import numpy.random as nr\nx = nr.shuffle([1])\n"
        assert rules_of(src) == ["REP001"]

    def test_unseeded_default_rng(self):
        src = "import numpy as np\nr = np.random.default_rng()\n"
        assert rules_of(src) == ["REP001"]

    def test_unseeded_random_instance(self):
        assert rules_of("import random\nr = random.Random()\n") == ["REP001"]

    def test_id_call(self):
        assert rules_of("k = id(object())\n") == ["REP001"]

    def test_seeded_rngs_pass(self):
        src = (
            "import random\n"
            "import numpy as np\n"
            "a = np.random.default_rng(42)\n"
            "b = random.Random(7)\n"
        )
        assert rules_of(src) == []

    def test_line_noqa(self):
        src = "import time\nt = time.time()  # repro: noqa REP001\n"
        assert rules_of(src) == []

    def test_bare_noqa_suppresses_all(self):
        src = "import time\nt = time.time()  # repro: noqa\n"
        assert rules_of(src) == []

    def test_noqa_for_other_rule_does_not_suppress(self):
        src = "import time\nt = time.time()  # repro: noqa REP003\n"
        # The REP001 finding survives, and the REP003 pragma (which
        # suppressed nothing) is itself flagged as stale.
        assert rules_of(src) == ["REP000", "REP001"]


# ----------------------------------------------------------------------
# REP002 — hash-ordered iteration
# ----------------------------------------------------------------------


class TestRep002:
    def test_for_over_set_literal_name(self):
        assert rules_of("s = {1, 2}\nfor x in s:\n    pass\n") == ["REP002"]

    def test_sum_over_set(self):
        assert rules_of("s = set()\nt = sum(s)\n") == ["REP002"]

    def test_fromiter_over_set(self):
        src = "import numpy as np\ns = {1}\na = np.fromiter(s, dtype=int)\n"
        assert rules_of(src) == ["REP002"]

    def test_annotated_self_attribute(self):
        src = (
            "class C:\n"
            "    def __init__(self):\n"
            "        self._movable: set[int] = set()\n"
            "    def release(self):\n"
            "        return list(self._movable)\n"
        )
        assert rules_of(src) == ["REP002"]

    def test_tuple_unpack_from_annotated_dict(self):
        """The page-cache pattern: a set inside a dict-of-tuples."""
        src = (
            "class C:\n"
            "    def __init__(self):\n"
            "        self._files: dict[str, tuple[int, set[int]]] = {}\n"
            "    def evict(self, name):\n"
            "        entry = self._files.pop(name, None)\n"
            "        node_id, frames = entry\n"
            "        for f in frames:\n"
            "            pass\n"
        )
        assert rules_of(src) == ["REP002"]

    def test_sorted_iteration_passes(self):
        assert rules_of("s = {1, 2}\nfor x in sorted(s):\n    pass\n") == []

    def test_dict_values_pass(self):
        """Dicts are insertion-ordered; only sets are flagged."""
        src = "d = {1: 2}\nfor v in d.values():\n    pass\n"
        assert rules_of(src) == []

    def test_membership_passes(self):
        assert rules_of("s = {1, 2}\nok = 1 in s\n") == []

    def test_noqa(self):
        src = "s = {1}\nfor x in s:  # repro: noqa REP002\n    pass\n"
        assert rules_of(src) == []


# ----------------------------------------------------------------------
# REP003 — unit safety
# ----------------------------------------------------------------------


class TestRep003:
    def test_add_mixed_units(self):
        src = "def f(n_bytes, n_frames):\n    return n_bytes + n_frames\n"
        assert rules_of(src) == ["REP003"]

    def test_compare_mixed_units(self):
        src = "def f(n_pages, n_regions):\n    return n_pages < n_regions\n"
        assert rules_of(src) == ["REP003"]

    def test_attribute_suffixes(self):
        src = "def f(a, b):\n    return a.free_bytes - b.num_frames\n"
        assert rules_of(src) == ["REP003"]

    def test_same_unit_passes(self):
        src = "def f(a_bytes, b_bytes):\n    return a_bytes + b_bytes\n"
        assert rules_of(src) == []

    def test_multiplication_is_conversion(self):
        src = "def f(n_frames, frame_bytes):\n    return n_frames * frame_bytes\n"
        assert rules_of(src) == []

    def test_units_helper_exempts(self):
        src = (
            "from repro.units import frames_to_bytes\n"
            "def f(n_bytes, n_frames):\n"
            "    return n_bytes + frames_to_bytes(n_frames, 4096)\n"
        )
        assert rules_of(src) == []

    def test_noqa(self):
        src = (
            "def f(n_bytes, n_frames):\n"
            "    return n_bytes + n_frames  # repro: noqa REP003\n"
        )
        assert rules_of(src) == []


# ----------------------------------------------------------------------
# REP004 — fault-site completeness (project-wide)
# ----------------------------------------------------------------------

SITES_SRC = """\
from enum import Enum


class FaultSite(Enum):
    ALLOC = "alloc"
    RECLAIM = "reclaim"
"""


class TestRep004:
    def write_tree(self, tmp_path, user_src):
        faults = tmp_path / "faults"
        faults.mkdir()
        (faults / "sites.py").write_text(SITES_SRC)
        (tmp_path / "user.py").write_text(user_src)

    def test_unwired_member_flagged(self, tmp_path):
        self.write_tree(
            tmp_path,
            "from faults.sites import FaultSite\n"
            "def f(inj):\n"
            "    inj.check(FaultSite.ALLOC)\n",
        )
        findings, errors = lint_paths(
            [str(tmp_path)], rules=["REP004"], root=str(tmp_path)
        )
        assert errors == []
        assert [f.rule for f in findings] == ["REP004"]
        assert "RECLAIM" in findings[0].message
        assert findings[0].path.endswith("faults/sites.py")

    def test_unknown_member_flagged(self, tmp_path):
        self.write_tree(
            tmp_path,
            "from faults.sites import FaultSite\n"
            "def f(inj):\n"
            "    inj.check(FaultSite.ALLOC)\n"
            "    inj.check(FaultSite.RECLAIM)\n"
            "    inj.check(FaultSite.GHOST)\n",
        )
        findings, _ = lint_paths(
            [str(tmp_path)], rules=["REP004"], root=str(tmp_path)
        )
        assert [f.rule for f in findings] == ["REP004"]
        assert "GHOST" in findings[0].message

    def test_fully_wired_passes(self, tmp_path):
        self.write_tree(
            tmp_path,
            "from faults.sites import FaultSite\n"
            "def f(inj):\n"
            "    inj.check(FaultSite.ALLOC)\n"
            "    inj.check(FaultSite.RECLAIM)\n",
        )
        findings, _ = lint_paths(
            [str(tmp_path)], rules=["REP004"], root=str(tmp_path)
        )
        assert findings == []

    def test_repo_tree_is_fully_wired(self):
        from repro.analysis.lint import default_target

        findings, errors = lint_paths([default_target()], rules=["REP004"])
        assert errors == []
        assert findings == []


# ----------------------------------------------------------------------
# REP005 — ledger hygiene
# ----------------------------------------------------------------------


class TestRep005:
    def test_direct_counter_mutation(self):
        src = "def f(ledger):\n    ledger.counts['x'] += 1\n"
        assert rules_of(src) == ["REP005"]

    def test_counter_method_call(self):
        src = "def f(ledger):\n    ledger.cycles.update({'x': 1})\n"
        assert rules_of(src) == ["REP005"]

    def test_raw_add_call(self):
        src = "def f(ledger):\n    ledger.add('x', 1, 2.0)\n"
        assert rules_of(src) == ["REP005"]

    def test_charge_helpers_pass(self):
        src = "def f(ledger):\n    ledger.minor_fault(3)\n"
        assert rules_of(src) == []

    def test_reads_pass(self):
        src = "def f(ledger):\n    return dict(ledger.counts)\n"
        assert rules_of(src) == []

    def test_unrelated_counts_attribute_passes(self):
        src = "def f(trace):\n    trace.counts['x'] += 1\n"
        assert rules_of(src) == []

    def test_stats_module_is_exempt(self):
        src = "def f(ledger):\n    ledger.counts['x'] += 1\n"
        assert rules_of(src, relpath="src/repro/mem/stats.py") == []


# ----------------------------------------------------------------------
# REP006 — __all__ hygiene
# ----------------------------------------------------------------------


class TestRep006:
    def test_dangling_export(self):
        src = "from .a import b\n__all__ = ['b', 'ghost']\n"
        findings = lint_text(src, "pkg/__init__.py")
        assert [f.rule for f in findings] == ["REP006"]
        assert "ghost" in findings[0].message

    def test_missing_export(self):
        src = "from .a import b, c\n__all__ = ['b']\n"
        findings = lint_text(src, "pkg/__init__.py")
        assert [f.rule for f in findings] == ["REP006"]
        assert "c" in findings[0].message

    def test_duplicate_export(self):
        src = "from .a import b\n__all__ = ['b', 'b']\n"
        findings = lint_text(src, "pkg/__init__.py")
        assert [f.rule for f in findings] == ["REP006"]

    def test_exact_match_passes(self):
        src = "from .a import b, c\n__all__ = ['b', 'c']\n"
        assert lint_text(src, "pkg/__init__.py") == []

    def test_private_names_ignored(self):
        src = "from .a import b\n_internal = 1\n__all__ = ['b']\n"
        assert lint_text(src, "pkg/__init__.py") == []

    def test_non_init_files_not_audited(self):
        src = "from a import b\n__all__ = ['b', 'ghost']\n"
        assert lint_text(src, "pkg/mod.py") == []


# ----------------------------------------------------------------------
# REP007 — durable-write discipline
# ----------------------------------------------------------------------


class TestRep007:
    def test_open_write_on_journal_path(self):
        src = "handle = open(journal_path, 'w')\n"
        assert rules_of(src) == ["REP007"]

    def test_open_append_on_journal_path(self):
        src = "handle = open(self.journal, mode='a')\n"
        assert rules_of(src) == ["REP007"]

    def test_open_read_passes(self):
        src = "handle = open(journal_path, 'r')\n"
        assert rules_of(src) == []

    def test_open_write_on_unrelated_path_passes(self):
        src = "handle = open(trace_path, 'w')\n"
        assert rules_of(src) == []

    def test_json_dump_on_results(self):
        src = "import json\njson.dump(rows, results_file)\n"
        assert rules_of(src) == ["REP007"]

    def test_write_text_on_results_path(self):
        src = "(out_dir / f'{result.figure_id}.txt').write_text(text)\n"
        assert rules_of(src) == ["REP007"]

    def test_write_text_on_unrelated_path_passes(self):
        src = "(out_dir / 'notes.txt').write_text(text)\n"
        assert rules_of(src) == []

    def test_runstate_package_exempt(self):
        src = "handle = open(journal_path, 'w')\n"
        assert lint_text(src, "repro/runstate/atomic.py") == []

    def test_noqa_suppresses(self):
        src = "h = open(journal_path, 'w')  # repro: noqa REP007\n"
        assert rules_of(src) == []


# ----------------------------------------------------------------------
# Suppressions, driver, CLI
# ----------------------------------------------------------------------


class TestRep000:
    """Unused-suppression reporting: stale pragmas rot visibly."""

    def test_unused_pragma_reported(self):
        findings = lint_text("x = 1  # repro: noqa REP001\n", "m.py")
        assert [f.rule for f in findings] == ["REP000"]
        assert "REP001" in findings[0].message

    def test_unused_bare_noqa_reported(self):
        findings = lint_text("x = 1  # repro: noqa\n", "m.py")
        assert [f.rule for f in findings] == ["REP000"]
        assert "all rules" in findings[0].message

    def test_used_pragma_not_reported(self):
        src = "import time\nt = time.time()  # repro: noqa REP001\n"
        assert rules_of(src) == []

    def test_multi_rule_pragma_used_by_one_rule_is_not_stale(self):
        src = "import time\nt = time.time()  # repro: noqa REP001,REP009\n"
        assert rules_of(src) == []

    def test_not_reported_on_rule_subset_runs(self):
        # A subset run cannot tell whether the pragma is stale — the
        # rule it names may simply not have run.
        src = "x = 1  # repro: noqa REP002\n"
        assert lint_text(src, rules=["REP001"]) == []

    def test_docstring_describing_pragma_is_not_a_pragma(self):
        src = '"""Use ``# repro: noqa REP001`` to suppress."""\nx = 1\n'
        assert rules_of(src) == []


class TestPragmaSpans:
    """A pragma anywhere on a statement covers the whole statement."""

    def test_pragma_on_last_line_of_multiline_call(self):
        src = "import time\nt = time.time(\n)  # repro: noqa REP001\n"
        assert rules_of(src) == []

    def test_pragma_on_decorator_covers_signature(self):
        src = (
            "import functools\n"
            "import time\n"
            "@functools.lru_cache  # repro: noqa REP001\n"
            "def f(x=time.time()):\n"
            "    return x\n"
        )
        assert rules_of(src) == []

    def test_def_pragma_does_not_blanket_the_body(self):
        src = (
            "import time\n"
            "def f():  # repro: noqa REP001\n"
            "    return time.time()\n"
        )
        # The body's REP001 is NOT covered by the header pragma, so it
        # fires — and the header pragma is reported stale.
        assert rules_of(src) == ["REP000", "REP001"]

    def test_innermost_statement_wins(self):
        src = (
            "import time\n"
            "with open('f') as h:\n"
            "    t = time.time()  # repro: noqa REP001\n"
            "    u = time.time()\n"
        )
        # The pragma covers its own assignment, not the whole `with`.
        assert rules_of(src) == ["REP001"]


# ----------------------------------------------------------------------
# REP012 — vectorized trace discipline
# ----------------------------------------------------------------------


class TestRep012:
    def test_for_over_trace_attribute(self):
        src = "for key in trace.run_keys:\n    total += key\n"
        assert rules_of(src) == ["REP012"]

    def test_zip_over_trace_arrays(self):
        src = (
            "for key, count in zip(trace.run_keys, trace.run_counts):\n"
            "    pass\n"
        )
        assert rules_of(src) == ["REP012"]

    def test_lookup_view_unpack_then_loop(self):
        src = (
            "keys, aids = trace.lookup_view()\n"
            "for key in keys:\n"
            "    pass\n"
        )
        assert rules_of(src) == ["REP012"]

    def test_range_len_indexed_loop(self):
        src = (
            "keys = trace.run_keys\n"
            "for i in range(len(keys)):\n"
            "    k = keys[i]\n"
        )
        assert rules_of(src) == ["REP012"]

    def test_comprehension_over_tolist(self):
        src = "hot = [k for k in trace.lookup_keys.tolist() if k & 1]\n"
        assert rules_of(src) == ["REP012"]

    def test_taint_through_astype(self):
        src = (
            "narrow = trace.run_keys.astype('int32')\n"
            "for key in narrow:\n"
            "    pass\n"
        )
        assert rules_of(src) == ["REP012"]

    def test_vectorized_consumption_passes(self):
        src = (
            "import numpy as np\n"
            "keys, aids = trace.lookup_view()\n"
            "misses = np.bincount(aids, minlength=8)\n"
            "total = int(trace.run_counts.sum())\n"
        )
        assert rules_of(src) == []

    def test_engine_and_hierarchy_are_exempt(self):
        src = "for key in trace.run_keys:\n    pass\n"
        assert rules_of(src, "repro/tlb/engine.py") == []
        assert rules_of(src, "repro/tlb/hierarchy.py") == []

    def test_unrelated_loops_pass(self):
        src = "for chunk in chunks:\n    process(chunk)\n"
        assert rules_of(src) == []

    def test_noqa(self):
        src = (
            "for key in trace.run_keys:  # repro: noqa REP012\n"
            "    pass\n"
        )
        assert rules_of(src) == []


# ----------------------------------------------------------------------
# REP013 — policy hook sandbox
# ----------------------------------------------------------------------


def rep013_of(source: str, relpath: str = "mod.py") -> list[str]:
    return [f.rule for f in lint_text(source, relpath, rules=["REP013"])]


def _hook(body: str) -> str:
    """A minimal PagePolicy class with ``body`` inside on_fault."""
    lines = "".join(f"        {line}\n" for line in body.splitlines())
    return (
        "import time\n"
        "import random\n"
        "import numpy as np\n"
        "class Hook:\n"
        "    name = 'fixture'\n"
        "    def on_fault(self, ctx, view):\n"
        f"{lines}"
        "        return None\n"
    )


class TestRep013:
    def test_wall_clock_in_hook(self):
        assert rep013_of(_hook("t = time.time()")) == ["REP013"]

    def test_ambient_numpy_rng_in_hook(self):
        assert rep013_of(_hook("r = np.random.random()")) == ["REP013"]

    def test_seeded_rng_module_still_banned(self):
        # Even a seeded RNG makes the decision depend on call order,
        # not on the hook's inputs.
        assert rep013_of(_hook("r = random.Random(7).random()")) == [
            "REP013"
        ]

    def test_view_attribute_write(self):
        assert rep013_of(_hook("view.cached = 1")) == ["REP013"]

    def test_view_nested_write(self):
        assert rep013_of(_hook("view.vmm.node.frames[0] = 1")) == [
            "REP013"
        ]

    def test_view_setattr(self):
        assert rep013_of(_hook("setattr(view, 'x', 1)")) == ["REP013"]

    def test_import_outside_allowlist(self):
        assert rep013_of(_hook("import os")) == ["REP013"]

    def test_import_from_outside_allowlist(self):
        assert rep013_of(_hook("from pathlib import Path")) == ["REP013"]

    def test_open_in_hook(self):
        src = _hook("fh = open('/tmp/x')\nfh.close()")
        assert rep013_of(src) == ["REP013"]

    def test_compliant_hook_passes(self):
        src = _hook(
            "import math\n"
            "score = math.log1p(view.free_frames)\n"
            "names = view.vma_names()"
        )
        assert rep013_of(src) == []

    def test_all_three_decision_points_are_covered(self):
        src = (
            "import time\n"
            "class Hook:\n"
            "    def on_khugepaged_scan(self, candidates, view):\n"
            "        time.time()\n"
            "        return ()\n"
            "    def on_demote_scan(self, candidates, view):\n"
            "        time.time()\n"
            "        return ()\n"
        )
        assert rep013_of(src) == ["REP013", "REP013"]

    def test_banned_calls_outside_hooks_stay_rep013_silent(self):
        # Wall clocks elsewhere are REP001's business, not REP013's.
        src = "import time\ndef helper():\n    return time.time()\n"
        assert rep013_of(src) == []

    def test_noqa(self):
        assert rep013_of(_hook("t = time.time()  # repro: noqa REP013")) == []


class TestBaseline:
    def _write_bad(self, tmp_path, extra=""):
        (tmp_path / "bad.py").write_text(
            "import time\nt = time.time()\n" + extra
        )

    def test_update_then_ratchet(self, tmp_path, capsys):
        self._write_bad(tmp_path)
        baseline = str(tmp_path / "base.json")
        assert lint_main(
            [str(tmp_path), "--update-baseline", baseline]
        ) == 0
        # Baselined findings no longer fail the run...
        assert lint_main([str(tmp_path), "--baseline", baseline]) == 0
        # ...but a new occurrence of the same defect still does.
        self._write_bad(tmp_path, extra="u = time.time()\n")
        assert lint_main([str(tmp_path), "--baseline", baseline]) == 1

    def test_line_shifts_do_not_invalidate_baseline(self, tmp_path):
        self._write_bad(tmp_path)
        baseline = str(tmp_path / "base.json")
        lint_main([str(tmp_path), "--update-baseline", baseline])
        (tmp_path / "bad.py").write_text(
            "# one\n# two\n# three\nimport time\nt = time.time()\n"
        )
        assert lint_main([str(tmp_path), "--baseline", baseline]) == 0

    def test_json_reports_baselined_count(self, tmp_path, capsys):
        self._write_bad(tmp_path)
        baseline = str(tmp_path / "base.json")
        lint_main([str(tmp_path), "--update-baseline", baseline])
        capsys.readouterr()
        assert lint_main(
            [str(tmp_path), "--baseline", baseline, "--format", "json"]
        ) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["findings"] == []
        assert payload["baselined"] == 1

    def test_malformed_baseline_is_usage_error(self, tmp_path, capsys):
        bad = tmp_path / "base.json"
        bad.write_text("{}")
        (tmp_path / "ok.py").write_text("x = 1\n")
        with pytest.raises(SystemExit) as err:
            lint_main([str(tmp_path), "--baseline", str(bad)])
        assert err.value.code == 2

    def test_repo_baseline_is_empty(self):
        """The shipped ratchet starts clean: no tolerated findings."""
        from repro.analysis.baseline import (
            DEFAULT_BASELINE_PATH,
            load_baseline,
        )

        assert load_baseline(DEFAULT_BASELINE_PATH) == {}


class TestSuppressions:
    def test_file_level_pragma(self):
        src = "# repro: noqa-file REP001\nimport time\nt = time.time()\n"
        assert rules_of(src) == []

    def test_file_pragma_outside_window_ignored(self):
        filler = "x = 1\n" * 12
        src = filler + "# repro: noqa-file REP001\nimport time\nt = time.time()\n"
        assert rules_of(src) == ["REP001"]

    def test_multiple_codes(self):
        supp = Suppressions.from_source("x = 1  # repro: noqa REP001, REP003\n")
        assert supp.is_suppressed(1, "REP001")
        assert supp.is_suppressed(1, "REP003")
        assert not supp.is_suppressed(1, "REP002")
        assert not supp.is_suppressed(2, "REP001")


class TestDriver:
    def test_findings_sorted_and_rendered(self):
        src = "import time\nb = time.time()\na = time.time()\n"
        findings = lint_text(src, "m.py")
        assert [f.line for f in findings] == [2, 3]
        assert findings[0].render().startswith("m.py:2:")

    def test_unknown_rule_rejected(self):
        with pytest.raises(ValueError, match="REP999"):
            lint_text("x = 1\n", rules=["REP999"])

    def test_rule_catalogue_complete(self):
        assert ALL_RULES == tuple(sorted(RULE_SUMMARIES))
        assert len(ALL_RULES) == 14

    def test_syntax_error_reported_not_fatal(self, tmp_path):
        (tmp_path / "bad.py").write_text("def broken(:\n")
        (tmp_path / "good.py").write_text("import time\nt = time.time()\n")
        findings, errors = lint_paths([str(tmp_path)], root=str(tmp_path))
        assert len(errors) == 1 and "bad.py" in errors[0]
        assert [f.rule for f in findings] == ["REP001"]


class TestCli:
    def test_clean_tree_exits_zero(self, tmp_path, capsys):
        (tmp_path / "ok.py").write_text("x = 1\n")
        assert lint_main([str(tmp_path)]) == 0

    def test_findings_exit_one_text(self, tmp_path, capsys):
        (tmp_path / "bad.py").write_text("import time\nt = time.time()\n")
        assert lint_main([str(tmp_path)]) == 1
        out = capsys.readouterr().out
        assert "REP001" in out and "bad.py" in out

    def test_json_format(self, tmp_path, capsys):
        (tmp_path / "bad.py").write_text("import time\nt = time.time()\n")
        assert lint_main([str(tmp_path), "--format", "json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["errors"] == []
        assert payload["findings"][0]["rule"] == "REP001"
        assert payload["findings"][0]["line"] == 2

    def test_rule_selection(self, tmp_path):
        (tmp_path / "bad.py").write_text("import time\nt = time.time()\n")
        assert lint_main([str(tmp_path), "--rules", "REP002"]) == 0
        assert lint_main([str(tmp_path), "--rules", "REP001"]) == 1

    def test_list_rules(self, capsys):
        assert lint_main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule in ALL_RULES:
            assert rule in out

    def test_repo_tree_is_clean(self):
        """The acceptance gate: the shipped tree has zero findings."""
        assert lint_main([]) == 0
