"""Unit tests for the virtual memory manager and THP policy engine."""

import numpy as np
import pytest

from repro.errors import AddressError, AllocationError, OutOfMemoryError
from repro.mem.memhog import Memhog
from repro.mem.swap import SwapDevice
from repro.mem.thp import ThpMode, ThpPolicy
from repro.mem.vmm import FRAME_SWAPPED, FRAME_UNMAPPED, VirtualMemoryManager


def make_vmm(node, tiny_cfg, policy=None):
    return VirtualMemoryManager(node, policy or ThpPolicy.never(), tiny_cfg)


class TestMmap:
    def test_vma_alignment(self, node, tiny_cfg):
        vmm = make_vmm(node, tiny_cfg)
        huge = tiny_cfg.pages.huge_page_size
        a = vmm.mmap("a", 3 * huge)
        b = vmm.mmap("b", 100)
        assert a.start % huge == 0
        assert b.start % huge == 0
        assert b.start >= a.end

    def test_no_physical_before_touch(self, node, tiny_cfg):
        vmm = make_vmm(node, tiny_cfg)
        vma = vmm.mmap("a", 10 * tiny_cfg.pages.base_page_size)
        assert (vma.frame == FRAME_UNMAPPED).all()
        assert node.free_frame_count == node.num_frames

    def test_rejects_bad_length(self, node, tiny_cfg):
        vmm = make_vmm(node, tiny_cfg)
        with pytest.raises(AllocationError):
            vmm.mmap("a", 0)

    def test_find_vma(self, node, tiny_cfg):
        vmm = make_vmm(node, tiny_cfg)
        vma = vmm.mmap("prop", 4096)
        assert vmm.find_vma("prop") is vma
        with pytest.raises(AddressError):
            vmm.find_vma("missing")


class TestMadvise:
    def test_marks_overlapping_chunks(self, node, tiny_cfg):
        vmm = make_vmm(node, tiny_cfg)
        huge = tiny_cfg.pages.huge_page_size
        vma = vmm.mmap("a", 4 * huge)
        vmm.madvise_huge(vma, huge + 1, huge)  # spans chunks 1 and 2
        assert list(vma.advised) == [False, True, True, False]

    def test_full_range_default(self, node, tiny_cfg):
        vmm = make_vmm(node, tiny_cfg)
        vma = vmm.mmap("a", 3 * tiny_cfg.pages.huge_page_size)
        vmm.madvise_huge(vma)
        assert vma.advised.all()

    def test_out_of_range(self, node, tiny_cfg):
        vmm = make_vmm(node, tiny_cfg)
        vma = vmm.mmap("a", 4096)
        with pytest.raises(AddressError):
            vmm.madvise_huge(vma, 0, 10_000_000)


class TestTouchNever:
    def test_base_pages_only(self, node, tiny_cfg):
        vmm = make_vmm(node, tiny_cfg, ThpPolicy.never())
        huge = tiny_cfg.pages.huge_page_size
        vma = vmm.mmap("a", 2 * huge)
        vmm.touch(vma)
        assert (vma.frame >= 0).all()
        assert not vma.is_huge.any()
        assert node.ledger.counts["minor_fault"] == vma.npages

    def test_touch_idempotent(self, node, tiny_cfg):
        vmm = make_vmm(node, tiny_cfg)
        vma = vmm.mmap("a", tiny_cfg.pages.huge_page_size)
        vmm.touch(vma)
        used = node.free_frame_count
        vmm.touch(vma)
        assert node.free_frame_count == used


class TestTouchAlways:
    def test_full_chunks_get_huge_pages(self, node, tiny_cfg):
        vmm = make_vmm(node, tiny_cfg, ThpPolicy.always())
        huge = tiny_cfg.pages.huge_page_size
        vma = vmm.mmap("a", 2 * huge)
        vmm.touch(vma)
        assert vma.huge_chunk_count == 2
        assert vma.is_huge.all()
        assert node.ledger.counts["huge_fault"] == 2

    def test_partial_tail_chunk_stays_base(self, node, tiny_cfg):
        vmm = make_vmm(node, tiny_cfg, ThpPolicy.always())
        huge = tiny_cfg.pages.huge_page_size
        base = tiny_cfg.pages.base_page_size
        vma = vmm.mmap("a", huge + base)
        vmm.touch(vma)
        assert vma.huge_chunk_count == 1
        assert not vma.is_huge[-1]

    def test_falls_back_to_base_when_no_regions(self, node, tiny_cfg):
        hog = Memhog(node)
        # Leave exactly 2 huge regions' worth of memory, all fragmented.
        hog.leave_free_bytes(2 * tiny_cfg.pages.huge_page_size)
        from repro.mem.frag import Fragmenter

        Fragmenter(node).fragment(1.0)
        vmm = make_vmm(node, tiny_cfg, ThpPolicy.always())
        vma = vmm.mmap("a", tiny_cfg.pages.huge_page_size)
        vmm.touch(vma)
        assert vma.huge_chunk_count == 0
        assert vma.resident_pages == vma.npages


class TestTouchMadvise:
    def test_only_advised_chunks_are_huge(self, node, tiny_cfg):
        vmm = make_vmm(node, tiny_cfg, ThpPolicy.madvise())
        huge = tiny_cfg.pages.huge_page_size
        vma = vmm.mmap("a", 4 * huge)
        vmm.madvise_huge(vma, 0, 2 * huge)
        vmm.touch(vma)
        assert list(vma.huge_region >= 0) == [True, True, False, False]


class TestUnmap:
    def test_unmap_frees_everything(self, node, tiny_cfg):
        vmm = make_vmm(node, tiny_cfg, ThpPolicy.always())
        huge = tiny_cfg.pages.huge_page_size
        vma = vmm.mmap("a", 3 * huge + 4096)
        vmm.touch(vma)
        vmm.unmap(vma)
        assert node.free_frame_count == node.num_frames
        assert vma not in vmm.vmas


class TestPromotionDemotion:
    def test_khugepaged_promotes_base_chunks(self, node, tiny_cfg):
        policy = ThpPolicy(mode=ThpMode.ALWAYS, fault_alloc=False)
        vmm = make_vmm(node, tiny_cfg, policy)
        huge = tiny_cfg.pages.huge_page_size
        vma = vmm.mmap("a", 2 * huge)
        vmm.touch(vma)
        assert vma.huge_chunk_count == 0
        promoted = vmm.khugepaged_pass()
        assert promoted == 2
        assert vma.huge_chunk_count == 2
        assert node.ledger.counts["promotions"] == 2
        # Promotion copies every constituent frame.
        assert (
            node.ledger.counts["promotion_frames"]
            == 2 * tiny_cfg.pages.frames_per_huge
        )

    def test_khugepaged_respects_mode(self, node, tiny_cfg):
        vmm = make_vmm(node, tiny_cfg, ThpPolicy.never())
        vma = vmm.mmap("a", 2 * tiny_cfg.pages.huge_page_size)
        vmm.touch(vma)
        assert vmm.khugepaged_pass() == 0

    def test_demotion_splits(self, node, tiny_cfg):
        vmm = make_vmm(node, tiny_cfg, ThpPolicy.always())
        vma = vmm.mmap("a", 2 * tiny_cfg.pages.huge_page_size)
        vmm.touch(vma)
        vmm.demote_chunk(vma, 0)
        assert vma.huge_chunk_count == 1
        assert not vma.is_huge[: tiny_cfg.pages.frames_per_huge].any()
        # Pages remain resident after the split.
        assert vma.resident_pages == vma.npages
        assert node.ledger.counts["demotions"] == 1

    def test_demote_underutilized(self, node, tiny_cfg):
        vmm = make_vmm(node, tiny_cfg, ThpPolicy.always())
        vma = vmm.mmap("a", 4 * tiny_cfg.pages.huge_page_size)
        vmm.touch(vma)
        utilization = np.array([1.0, 0.1, 0.5, 0.0])
        demoted = vmm.demote_underutilized(vma, utilization, threshold=0.4)
        assert demoted == 2
        assert vma.huge_chunk_count == 2


class TestSwap:
    def test_swap_out_and_in(self, node, tiny_cfg):
        vmm = make_vmm(node, tiny_cfg, ThpPolicy.never())
        vmm.swap_device = SwapDevice()
        vma = vmm.mmap("a", 8 * tiny_cfg.pages.base_page_size)
        vmm.touch(vma)
        assert vmm.swap_out_pages(3) == 3
        assert vma.swapped_pages == 3
        assert vmm.swap_device.pages_out == 3
        page = int(np.flatnonzero(vma.frame == FRAME_SWAPPED)[0])
        vmm.swap_in_page(vma, page)
        assert vma.frame[page] >= 0
        assert vmm.swap_device.pages_in == 1

    def test_swap_out_demotes_huge_victims(self, node, tiny_cfg):
        vmm = make_vmm(node, tiny_cfg, ThpPolicy.always())
        vmm.swap_device = SwapDevice()
        vma = vmm.mmap("a", tiny_cfg.pages.huge_page_size)
        vmm.touch(vma)
        assert vma.huge_chunk_count == 1
        vmm.swap_out_pages(1)
        assert vma.huge_chunk_count == 0  # split before swapping
        assert vma.swapped_pages == 1

    def test_touch_triggers_swap_under_oversubscription(
        self, node, tiny_cfg
    ):
        hog = Memhog(node)
        base = tiny_cfg.pages.base_page_size
        hog.leave_free_bytes(4 * base)
        vmm = make_vmm(node, tiny_cfg, ThpPolicy.never())
        vmm.swap_device = SwapDevice()
        vma = vmm.mmap("a", 8 * base)
        vmm.touch(vma)
        assert vma.resident_pages + vma.swapped_pages == 8
        assert vmm.swap_device.pages_out >= 4

    def test_oom_without_swap(self, node, tiny_cfg):
        hog = Memhog(node)
        hog.leave_free_bytes(0)
        vmm = make_vmm(node, tiny_cfg, ThpPolicy.never())
        vma = vmm.mmap("a", 4096)
        with pytest.raises(OutOfMemoryError):
            vmm.touch(vma)


class TestCompactionCallback:
    def test_relocate_updates_page_table(self, node, tiny_cfg):
        """Compaction migrating a VMM page must repoint vma.frame."""
        vmm = make_vmm(node, tiny_cfg, ThpPolicy.never())
        base = tiny_cfg.pages.base_page_size
        vma = vmm.mmap("a", 2 * base)
        vmm.touch(vma)
        old = int(vma.frame[0])
        vmm.relocate_frame(old, 999)
        assert int(vma.frame[0]) == 999
        assert vmm._frame_map[999] == (vma, 0)
