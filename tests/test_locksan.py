"""Tests for LockSan, the runtime lockset sanitizer (REP009's twin).

The centerpiece is the confirmation pair: a replica of the *pre-fix*
supervisor stop-flag defect produces a dynamic violation under two
threads (REP009 confirmed by execution, not just by the static model),
and the shipped Event-based fix runs clean under the same drill.
"""

from __future__ import annotations

import threading

from repro.analysis.locksan import (
    LockSanitizer,
    TrackedLock,
    held_locks,
    make_lock,
    set_locksan,
    watch,
)


def run_in_thread(fn):
    thread = threading.Thread(target=fn)
    thread.start()
    thread.join()


class TestTrackedLock:
    def test_held_set_tracks_acquire_release(self):
        lock = TrackedLock("L")
        assert held_locks() == frozenset()
        with lock:
            assert held_locks() == frozenset({"L"})
        assert held_locks() == frozenset()

    def test_nested_locks(self):
        outer, inner = TrackedLock("outer"), TrackedLock("inner")
        with outer:
            with inner:
                assert held_locks() == frozenset({"outer", "inner"})
            assert held_locks() == frozenset({"outer"})

    def test_held_set_is_per_thread(self):
        lock = TrackedLock("L")
        seen = {}

        def other():
            seen["held"] = held_locks()

        with lock:
            run_in_thread(other)
        assert seen["held"] == frozenset()

    def test_nonblocking_acquire_failure_does_not_record(self):
        lock = TrackedLock("L")
        lock.acquire()
        seen = {}

        def other():
            seen["got"] = lock.acquire(blocking=False)
            seen["held"] = held_locks()

        run_in_thread(other)
        lock.release()
        assert seen["got"] is False
        assert seen["held"] == frozenset()


class PreFixSupervisor:
    """Replica of the pre-fix WorkerSupervisor._stopping defect: the
    flag is written bare in stop() but read under the lock in poll()."""

    def __init__(self, san):
        self._lock = TrackedLock("PreFixSupervisor._lock")
        self._stopping = False
        watch(self, sanitizer=san)

    def stop(self):
        self._stopping = True

    def poll(self):
        with self._lock:
            return self._stopping


class FixedSupervisor:
    """The shipped fix: a self-synchronizing Event, never rebound."""

    def __init__(self, san):
        self._lock = TrackedLock("FixedSupervisor._lock")
        self._stop = threading.Event()
        watch(self, sanitizer=san)

    def stop(self):
        self._stop.set()

    def poll(self):
        with self._lock:
            return self._stop.is_set()


class TestEraserRule:
    def test_prefix_stop_flag_violation_confirmed(self):
        """LockSan dynamically confirms the REP009 supervisor finding."""
        san = LockSanitizer()
        sup = PreFixSupervisor(san)
        run_in_thread(sup.poll)  # guarded read on another thread
        sup.stop()  # bare write on this thread
        report = san.report()
        assert [(v.cls, v.attr) for v in report] == [
            ("PreFixSupervisor", "_stopping")
        ]
        violation = report[0]
        assert violation.threads == 2
        assert violation.writes >= 1
        assert "no common lock" in violation.render()

    def test_fixed_event_pattern_is_clean(self):
        san = LockSanitizer()
        sup = FixedSupervisor(san)
        run_in_thread(sup.poll)
        sup.stop()
        assert san.report() == []

    def test_consistent_locking_is_clean(self):
        san = LockSanitizer()
        sup = PreFixSupervisor(san)

        def locked_stop():
            with sup._lock:
                sup._stopping = True

        run_in_thread(sup.poll)
        locked_stop()
        assert san.report() == []

    def test_single_thread_is_clean(self):
        san = LockSanitizer()
        sup = PreFixSupervisor(san)
        sup.poll()
        sup.stop()
        assert san.report() == []

    def test_never_locked_attribute_is_clean(self):
        """An attribute no lock ever guards is not *mixed* discipline —
        that split is the static rule's to make."""
        san = LockSanitizer()

        class Bare:
            def __init__(self):
                self._n = 0
                watch(self, sanitizer=san)

            def bump(self):
                self._n += 1

        obj = Bare()
        run_in_thread(obj.bump)
        obj.bump()
        assert san.report() == []

    def test_init_writes_are_not_counted(self):
        # watch() runs at the end of __init__, so construction writes
        # never look like post-init mutation.
        san = LockSanitizer()
        sup = PreFixSupervisor(san)
        run_in_thread(sup.poll)
        sup.poll()
        assert san.report() == []

    def test_reset_clears_records(self):
        san = LockSanitizer()
        sup = PreFixSupervisor(san)
        run_in_thread(sup.poll)
        sup.stop()
        assert san.report() != []
        san.reset()
        assert san.report() == []
        assert san.checks == 0


class TestEnablement:
    def test_disabled_is_a_no_op(self):
        previous = set_locksan(False)
        try:
            assert not isinstance(make_lock("x"), TrackedLock)

            class Plain:
                def __init__(self):
                    self._x = 1

            obj = Plain()
            assert watch(obj) is obj
            assert type(obj) is Plain
        finally:
            set_locksan(previous)

    def test_enabled_instruments(self):
        previous = set_locksan(True)
        try:
            assert isinstance(make_lock("x"), TrackedLock)
        finally:
            set_locksan(previous)

    def test_supervisor_integration(self):
        """WorkerSupervisor self-instruments when LockSan is on."""
        from repro.serve.supervisor import WorkerSupervisor

        previous = set_locksan(True)
        sup = None
        try:
            sup = WorkerSupervisor(
                settings={},
                workers=0,
                completion=lambda *a: None,
                listener=lambda *a, **k: None,
            )
            assert type(sup).__name__ == "LockSan[WorkerSupervisor]"
            assert isinstance(sup._lock, TrackedLock)
        finally:
            set_locksan(previous)
            if sup is not None:
                sup.stop()
