"""Tests for the command-line interface (driven in-process)."""

import pytest

from repro.cli import main


class TestInformational:
    def test_profiles(self, capsys):
        assert main(["profiles"]) == 0
        out = capsys.readouterr().out
        assert "scaled" in out
        assert "paper-x86" in out
        assert "STLB" in out

    def test_policies(self, capsys):
        assert main(["policies"]) == 0
        out = capsys.readouterr().out
        assert "base4k" in out
        assert "thp" in out
        assert "selective:" in out

    def test_datasets(self, capsys):
        assert main(["datasets"]) == 0
        out = capsys.readouterr().out
        assert "kron-s" in out
        assert "Kr25" in out
        assert "test-small" not in out


class TestRun:
    def test_run_tiny_cell(self, capsys):
        code = main(
            [
                "run",
                "--workload",
                "bfs",
                "--dataset",
                "test-small",
                "--policy",
                "thp",
                "--scenario",
                "fresh",
                "--profile",
                "tiny",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "kernel_cycles" in out
        assert "dtlb_miss_rate" in out

    def test_run_selective_policy_spec(self, capsys):
        code = main(
            [
                "run",
                "--dataset",
                "test-small",
                "--policy",
                "selective:0.5:original",
                "--scenario",
                "constrained:1.0",
                "--profile",
                "tiny",
            ]
        )
        assert code == 0

    def test_unknown_policy_errors(self, capsys):
        code = main(
            ["run", "--dataset", "test-small", "--policy", "bogus",
             "--profile", "tiny"]
        )
        assert code == 2
        assert "unknown policy" in capsys.readouterr().err

    def test_unknown_scenario_errors(self, capsys):
        code = main(
            ["run", "--dataset", "test-small", "--scenario", "bogus",
             "--profile", "tiny"]
        )
        assert code == 2
        assert "unknown scenario" in capsys.readouterr().err

    def test_fragmented_scenario_spec(self, capsys):
        code = main(
            [
                "run",
                "--dataset",
                "test-small",
                "--scenario",
                "fragmented:0.25:2.0",
                "--profile",
                "tiny",
            ]
        )
        assert code == 0


class TestFigure:
    def test_figure_on_test_dataset(self, capsys):
        code = main(
            [
                "figure",
                "fig03",
                "--workloads",
                "bfs",
                "--datasets",
                "test-small",
                "--profile",
                "tiny",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "fig03" in out
        assert "dtlb_miss_4k" in out

    def test_unknown_figure(self, capsys):
        code = main(["figure", "fig99", "--profile", "tiny"])
        assert code == 2
        assert "unknown figure" in capsys.readouterr().err

    def test_figure_json_output(self, capsys):
        import json

        code = main(
            [
                "figure",
                "fig03",
                "--workloads",
                "bfs",
                "--datasets",
                "test-small",
                "--profile",
                "tiny",
                "--json",
            ]
        )
        assert code == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["figure_id"] == "fig03"
        assert doc["rows"]

    def test_figure_all_runs_every_function(self, capsys):
        code = main(
            [
                "figure",
                "all",
                "--workloads",
                "bfs",
                "--datasets",
                "test-small",
                "--profile",
                "tiny",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        for fid in ("fig01", "fig07b", "fig11", "headline", "abl-reorder"):
            assert f"[{fid}]" in out, fid


class TestAdvise:
    def test_advise(self, capsys):
        code = main(["advise", "--dataset", "test-small",
                     "--profile", "tiny"])
        assert code == 0
        out = capsys.readouterr().out
        assert "advise fraction" in out
        assert "budget fraction" in out
