"""Unit tests for the physical frame map (allocation, compaction,
fragmentation metrics)."""

import numpy as np
import pytest

from repro.errors import OutOfMemoryError
from repro.mem.physical import FrameState, NodeMemory, PhysicalMemory


class _RecordingOwner:
    """Frame owner that records callbacks for assertions."""

    def __init__(self):
        self.relocations: list[tuple[int, int]] = []
        self.reclaims: list[int] = []

    def relocate_frame(self, old, new):
        self.relocations.append((old, new))

    def reclaim_frame(self, frame):
        self.reclaims.append(frame)


@pytest.fixture
def owner(node):
    return node.register_owner(_RecordingOwner())


class TestBaseAllocation:
    def test_fresh_node_is_all_free(self, node):
        assert node.free_frame_count == node.num_frames
        assert node.pristine_region_count() == node.num_regions
        assert node.fragmentation_level() == 0.0

    def test_alloc_marks_frames(self, node, owner):
        frames = node.alloc_frames(10, owner)
        assert frames.size == 10
        assert (node.state[frames] == FrameState.MOVABLE).all()
        assert (node.owner_id[frames] == owner).all()
        assert node.free_frame_count == node.num_frames - 10

    def test_alloc_zero(self, node, owner):
        assert node.alloc_frames(0, owner).size == 0

    def test_alloc_never_double_allocates(self, node, owner):
        a = node.alloc_frames(100, owner)
        b = node.alloc_frames(100, owner)
        assert np.intersect1d(a, b).size == 0

    def test_alloc_oom(self, node, owner):
        with pytest.raises(OutOfMemoryError):
            node.alloc_frames(node.num_frames + 1, owner)

    def test_broken_first_packing(self, node, owner):
        """Base allocations fill partially-used regions before breaking
        pristine ones."""
        fpr = node.frames_per_region
        node.alloc_frames(fpr // 2, owner)  # breaks one region
        before = node.pristine_region_count()
        node.alloc_frames(fpr // 2, owner)  # should fill the same region
        assert node.pristine_region_count() == before

    def test_free_roundtrip(self, node, owner):
        frames = node.alloc_frames(64, owner)
        node.free_frames(frames)
        assert node.free_frame_count == node.num_frames
        assert (node.state[frames] == FrameState.FREE).all()
        assert (node.owner_id[frames] == -1).all()


class TestHugeAllocation:
    def test_pristine_region_preferred(self, node, owner):
        region = node.alloc_huge_region(owner)
        assert region is not None
        frames = node.region_frames(region)
        assert (node.state[frames] == FrameState.HUGE).all()

    def test_exhausts_then_none(self, node, owner):
        for _ in range(node.num_regions):
            assert node.alloc_huge_region(owner) is not None
        assert node.alloc_huge_region(owner) is None

    def test_free_region_roundtrip(self, node, owner):
        region = node.alloc_huge_region(owner)
        node.free_huge_region(region)
        assert node.pristine_region_count() == node.num_regions

    def test_compaction_assembles_region(self, node):
        """With every region broken by one movable page, compaction must
        migrate pages to assemble a region."""
        recorder = _RecordingOwner()
        owner = node.register_owner(recorder)
        fpr = node.frames_per_region
        # One movable page at the start of every region.
        firsts = np.arange(0, node.num_frames, fpr, dtype=np.int64)
        node.state[firsts] = int(FrameState.MOVABLE)
        node.owner_id[firsts] = owner
        assert node.pristine_region_count() == 0
        region = node.alloc_huge_region(owner)
        assert region is not None
        assert len(recorder.relocations) >= 1
        assert node.ledger.counts["compaction_migrate"] >= 1

    def test_compaction_disabled(self, node):
        recorder = _RecordingOwner()
        owner = node.register_owner(recorder)
        fpr = node.frames_per_region
        firsts = np.arange(0, node.num_frames, fpr, dtype=np.int64)
        node.state[firsts] = int(FrameState.MOVABLE)
        node.owner_id[firsts] = owner
        assert (
            node.alloc_huge_region(owner, allow_compaction=False,
                                   allow_reclaim=False)
            is None
        )

    def test_nonmovable_blocks_compaction(self, node):
        recorder = _RecordingOwner()
        owner = node.register_owner(recorder)
        fpr = node.frames_per_region
        firsts = np.arange(0, node.num_frames, fpr, dtype=np.int64)
        node.state[firsts] = int(FrameState.NONMOVABLE)
        node.owner_id[firsts] = owner
        assert node.alloc_huge_region(owner) is None

    def test_huge_frames_block_compaction(self, node):
        """Allocated huge pages are never split by compaction: if every
        region holds a huge page, no further region can be assembled."""
        recorder = _RecordingOwner()
        owner = node.register_owner(recorder)
        for _ in range(node.num_regions):
            node.alloc_huge_region(owner)
        # Free one base page inside a region: region has 1 free frame,
        # but the rest are HUGE and cannot be migrated.
        node.free_frames(np.array([0], dtype=np.int64))
        assert node.alloc_huge_region(owner) is None

    def test_reclaim_path(self, node):
        """Reclaimable (page-cache) frames are dropped to make room."""
        recorder = _RecordingOwner()
        owner = node.register_owner(recorder)
        fpr = node.frames_per_region
        firsts = np.arange(0, node.num_frames, fpr, dtype=np.int64)
        node.state[firsts] = int(FrameState.MOVABLE)
        node.owner_id[firsts] = owner
        node.reclaimable[firsts] = True
        region = node.alloc_huge_region(
            owner, allow_compaction=False, allow_reclaim=True
        )
        assert region is not None
        assert len(recorder.reclaims) >= 1
        assert node.ledger.counts["reclaim"] >= 1


class TestFragmentationMetric:
    def test_fully_pristine_is_zero(self, node):
        assert node.fragmentation_level() == 0.0

    def test_every_region_broken_is_one(self, node, owner):
        fpr = node.frames_per_region
        firsts = np.arange(0, node.num_frames, fpr, dtype=np.int64)
        node.state[firsts] = int(FrameState.NONMOVABLE)
        assert node.fragmentation_level() == 1.0

    def test_partial(self, node, owner):
        fpr = node.frames_per_region
        half = node.num_regions // 2
        firsts = np.arange(0, half * fpr, fpr, dtype=np.int64)
        node.state[firsts] = int(FrameState.NONMOVABLE)
        level = node.fragmentation_level()
        # Half the regions have 1 page used: free memory in them is
        # (fpr-1)/fpr of half the total.
        expected = (half * (fpr - 1)) / (
            half * (fpr - 1) + (node.num_regions - half) * fpr
        )
        assert level == pytest.approx(expected)


class TestDemoteRegion:
    def test_demote_makes_frames_movable(self, node, owner):
        region = node.alloc_huge_region(owner)
        node.demote_region(region)
        frames = node.region_frames(region)
        assert (node.state[frames] == FrameState.MOVABLE).all()


class TestPhysicalMemory:
    def test_nodes_created(self, tiny_cfg):
        mem = PhysicalMemory(tiny_cfg)
        assert len(mem.nodes) == tiny_cfg.num_nodes
        assert mem.node(0).node_id == 0

    def test_reset_ledger_rebinds_nodes(self, physical):
        old = physical.ledger
        old_returned = physical.reset_ledger()
        assert old_returned is old
        assert physical.ledger is not old
        for node in physical.nodes:
            assert node.ledger is physical.ledger
