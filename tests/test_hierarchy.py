"""Unit tests for the two-level translation hierarchy."""

import numpy as np
import pytest

from repro.config import CostModel, TlbConfig, TlbGeometry, tiny
from repro.tlb.hierarchy import (
    MAX_ARRAY_IDS,
    TranslationHierarchy,
    TranslationStats,
)
from repro.tlb.trace import TlbTrace, compress_trace


def make_hierarchy():
    return TranslationHierarchy(
        TlbConfig(
            l1_base=TlbGeometry(entries=2, ways=2),
            l1_huge=TlbGeometry(entries=2, ways=2),
            l2=TlbGeometry(entries=8, ways=4),
        )
    )


def trace_of(keys, aids=None):
    keys = np.asarray(keys, dtype=np.int64)
    if aids is None:
        aids = np.zeros(keys.size, dtype=np.uint8)
    else:
        aids = np.asarray(aids, dtype=np.uint8)
    return compress_trace(keys, aids)


class TestAccessOne:
    def test_walk_then_l2_then_l1(self):
        h = make_hierarchy()
        key = 7 << 1
        assert h.access_one(key) == "walk"
        # Evict from L1 by touching two conflicting pages.
        h.access_one(9 << 1)
        h.access_one(11 << 1)
        assert h.access_one(key) == "l2"
        assert h.access_one(key) == "l1"

    def test_huge_and_base_use_separate_l1(self):
        h = make_hierarchy()
        h.access_one(5 << 1)
        assert h.access_one((5 << 1) | 1) == "walk"  # same page, huge class
        assert h.access_one(5 << 1) == "l1"


class TestSimulate:
    def test_counts_match_access_one(self):
        """Batch simulation must agree with the single-access reference
        path on a random trace."""
        rng = np.random.default_rng(7)
        keys = (rng.integers(0, 40, 2000) << 1) | rng.integers(0, 2, 2000)
        ref = make_hierarchy()
        outcomes = [ref.access_one(int(k)) for k in keys]
        expected_l1_miss = sum(1 for o in outcomes if o != "l1")
        expected_walks = sum(1 for o in outcomes if o == "walk")

        h = make_hierarchy()
        stats = TranslationStats()
        h.simulate(trace_of(keys), stats)
        assert stats.total_accesses == 2000
        assert stats.total_l1_misses == expected_l1_miss
        assert stats.total_walks == expected_walks

    def test_run_tail_counts_as_l1_hits(self):
        h = make_hierarchy()
        stats = TranslationStats()
        h.simulate(trace_of([4, 4, 4, 4]), stats)
        assert stats.total_accesses == 4
        assert stats.total_l1_misses == 1
        assert stats.total_walks == 1

    def test_per_array_attribution(self):
        h = make_hierarchy()
        stats = TranslationStats()
        keys = [10 << 1, 20 << 1, 10 << 1]
        aids = [3, 1, 3]
        h.simulate(trace_of(keys, aids), stats)
        assert stats.accesses[3] == 2
        assert stats.accesses[1] == 1
        assert stats.l1_misses[1] == 1

    def test_adjacent_same_key_runs_charge_miss_to_leader(self):
        """Coalesced lookups: when consecutive runs touch the same page
        from different arrays, the one TLB miss lands on the leading
        run's array; the follower only gets its access count."""
        h = make_hierarchy()
        stats = TranslationStats()
        h.simulate(trace_of([4, 4], [1, 0]), stats)
        assert stats.accesses[1] == 1
        assert stats.accesses[0] == 1
        assert stats.l1_misses[1] == 1
        assert stats.l1_misses[0] == 0
        assert stats.walks[1] == 1

    def test_stats_merge(self):
        a = TranslationStats()
        b = TranslationStats()
        a.accesses[0] = 5
        b.accesses[0] = 7
        b.walks[1] = 2
        a.merge(b)
        assert a.accesses[0] == 12
        assert a.walks[1] == 2

    def test_rates(self):
        stats = TranslationStats()
        stats.accesses[0] = 100
        stats.l1_misses[0] = 40
        stats.walks[0] = 10
        assert stats.l1_miss_rate == pytest.approx(0.4)
        assert stats.walk_rate == pytest.approx(0.1)
        assert stats.stlb_hit_rate_of_l1_misses == pytest.approx(0.75)

    def test_translation_cycles(self):
        stats = TranslationStats()
        stats.accesses[0] = 100
        stats.l1_misses[0] = 40
        stats.walks[0] = 10
        cost = CostModel(l1_tlb_hit=0.0, l2_tlb_hit=10.0, page_walk=100.0)
        assert stats.translation_cycles(cost) == 30 * 10 + 10 * 100

    def test_translation_cycles_pinned_formula(self):
        """Pin the exact cost formula: L1 hits, STLB hits and walks each
        pay exactly their own cost — no cross terms, no dead terms."""
        stats = TranslationStats()
        stats.accesses[0] = 70
        stats.accesses[1] = 30
        stats.l1_misses[0] = 20
        stats.l1_misses[1] = 10
        stats.walks[0] = 7
        stats.walks[1] = 3
        cost = CostModel(l1_tlb_hit=2.0, l2_tlb_hit=9.0, page_walk=140.0)
        # 100 accesses, 30 L1 misses, 10 walks:
        #   70 L1 hits   * 2   = 140
        #   20 STLB hits * 9   = 180
        #   10 walks     * 140 = 1400
        assert stats.translation_cycles(cost) == 140 + 180 + 1400

    def test_translation_cycles_from_simulation(self):
        """The formula applied to simulated counts, hand-computed: a
        cold walk, an L1 hit, an L1-evicted STLB hit."""
        h = make_hierarchy()
        stats = TranslationStats()
        # L1 base is 2-entry/2-way (one set): two conflicting pages plus
        # a revisit of the first give walk, walk, walk, l1, l2.
        h.simulate(trace_of([2 << 1, 3 << 1, 4 << 1, 4 << 1, 2 << 1]), stats)
        assert stats.total_accesses == 5
        assert stats.total_l1_misses == 4
        assert stats.total_walks == 3
        cost = CostModel(l1_tlb_hit=1.0, l2_tlb_hit=9.0, page_walk=140.0)
        assert stats.translation_cycles(cost) == 1 * 1 + 1 * 9 + 3 * 140

    def test_empty_stats(self):
        stats = TranslationStats()
        assert stats.l1_miss_rate == 0.0
        assert stats.walk_rate == 0.0
        assert stats.stlb_hit_rate_of_l1_misses == 0.0

    def test_flush(self):
        h = make_hierarchy()
        h.access_one(3 << 1)
        h.flush()
        assert h.access_one(3 << 1) == "walk"

    def test_per_array_names(self):
        stats = TranslationStats()
        stats.accesses[3] = 9
        out = stats.per_array({3: "property_array"})
        assert out["property_array"]["accesses"] == 9


class TestCoverageBehaviour:
    def test_huge_pages_increase_reach(self):
        """The paper's core effect: a working set that thrashes the base
        hierarchy fits entirely via huge pages."""
        cfg = tiny()
        pages_per_huge = cfg.pages.frames_per_huge
        # 64 base pages: far beyond the tiny L2 (16 entries).
        base_keys = np.repeat(
            np.arange(64, dtype=np.int64) << 1, 1
        )
        rng = np.random.default_rng(3)
        base_trace = trace_of(rng.permutation(np.tile(base_keys, 10)))
        h = TranslationHierarchy(cfg.tlb)
        stats_base = TranslationStats()
        h.simulate(base_trace, stats_base)

        # The same 64 pages as 4 huge pages: fits the huge L1+L2 easily.
        huge_keys = (
            (np.arange(64, dtype=np.int64) // pages_per_huge) << 1
        ) | 1
        huge_trace = trace_of(rng.permutation(np.tile(huge_keys, 10)))
        h2 = TranslationHierarchy(cfg.tlb)
        stats_huge = TranslationStats()
        h2.simulate(huge_trace, stats_huge)

        assert stats_huge.walk_rate < 0.1 * stats_base.walk_rate + 0.05
        assert stats_huge.l1_miss_rate < stats_base.l1_miss_rate
