"""Unit tests for the synthetic graph generators."""

import numpy as np
import pytest

from repro.errors import GraphError
from repro.graph.generators import (
    path_graph,
    power_law_graph,
    rmat_graph,
    uniform_graph,
)


class TestRmat:
    def test_dimensions(self):
        g = rmat_graph(scale=10, num_edges=5000, seed=1)
        assert g.num_vertices == 1024
        assert g.num_edges == 5000

    def test_deterministic(self):
        a = rmat_graph(scale=8, num_edges=1000, seed=42)
        b = rmat_graph(scale=8, num_edges=1000, seed=42)
        assert np.array_equal(a.indices, b.indices)
        assert np.array_equal(a.indptr, b.indptr)

    def test_seed_changes_graph(self):
        a = rmat_graph(scale=8, num_edges=1000, seed=1)
        b = rmat_graph(scale=8, num_edges=1000, seed=2)
        assert not np.array_equal(a.indices, b.indices)

    def test_power_law_in_degrees(self):
        """R-MAT must produce a skewed in-degree distribution: the top
        1% of vertices receive far more than 1% of edges."""
        g = rmat_graph(scale=12, num_edges=65536, seed=3)
        ins = np.sort(g.in_degrees())[::-1]
        top = ins[: max(1, g.num_vertices // 100)].sum()
        assert top / g.num_edges > 0.08

    def test_shuffle_scatters_hubs(self):
        """With label shuffling, hot vertices are spread over the id
        space (no concentration in the low ids)."""
        g = rmat_graph(scale=12, num_edges=65536, seed=3,
                       shuffle_labels=True)
        ins = g.in_degrees()
        order = np.argsort(-ins)
        hot = order[: g.num_vertices // 20]
        # Hot ids should look uniform: mean near the middle.
        assert abs(hot.mean() / g.num_vertices - 0.5) < 0.15

    def test_unshuffled_hubs_at_low_ids(self):
        g = rmat_graph(scale=12, num_edges=65536, seed=3,
                       shuffle_labels=False)
        ins = g.in_degrees()
        order = np.argsort(-ins)
        hot = order[: g.num_vertices // 20]
        assert hot.mean() / g.num_vertices < 0.4

    def test_weighted(self):
        g = rmat_graph(scale=6, num_edges=100, seed=1, weighted=True)
        assert g.weights is not None
        assert (g.weights >= 1).all()

    def test_invalid_probabilities(self):
        with pytest.raises(GraphError):
            rmat_graph(scale=4, num_edges=10, a=0.9, b=0.9, c=0.9)


class TestPowerLaw:
    def test_dimensions(self):
        g = power_law_graph(num_vertices=500, num_edges=3000, seed=1)
        assert g.num_vertices == 500
        assert g.num_edges == 3000

    def test_hubs_at_low_ids(self):
        g = power_law_graph(
            num_vertices=2000, num_edges=30000, alpha=1.0, seed=2
        )
        ins = g.in_degrees()
        # The first 5% of ids must receive a large share of edges.
        head = ins[: 100].sum()
        assert head / g.num_edges > 0.3

    def test_community_fraction_keeps_edges_local(self):
        g = power_law_graph(
            num_vertices=4096,
            num_edges=30000,
            alpha=0.5,
            community_fraction=0.9,
            community_size=256,
            seed=3,
        )
        src, dst = g.edge_endpoints()
        local = (src // 256) == (dst // 256)
        assert local.mean() > 0.6

    def test_hub_shuffle_scatters(self):
        g = power_law_graph(
            num_vertices=2000, num_edges=30000, alpha=1.0,
            hub_shuffle=1.0, seed=2,
        )
        ins = g.in_degrees()
        head = ins[:100].sum()
        assert head / g.num_edges < 0.3

    def test_parameter_validation(self):
        with pytest.raises(GraphError):
            power_law_graph(10, 10, community_fraction=1.5)
        with pytest.raises(GraphError):
            power_law_graph(10, 10, hub_shuffle=-0.1)

    def test_deterministic(self):
        a = power_law_graph(100, 500, seed=9)
        b = power_law_graph(100, 500, seed=9)
        assert np.array_equal(a.indices, b.indices)


class TestUniformAndPath:
    def test_uniform(self):
        g = uniform_graph(100, 400, seed=1)
        assert g.num_vertices == 100
        assert g.num_edges == 400

    def test_path(self):
        g = path_graph(5)
        assert g.num_edges == 4
        assert g.neighbors(0).tolist() == [1]
        assert g.neighbors(4).tolist() == []

    def test_weighted_path(self):
        g = path_graph(4, weighted=True)
        assert g.weights.tolist() == [1, 1, 1]
