"""Structural tests for the figure functions.

Run every figure on a TINY-profile runner over the fast test dataset:
the numbers are not the paper's (the test graph is far too small to
pressure the TLB), but every function must produce the right rows,
columns and render without error.  The paper-shape assertions live in
test_integration_paper_shapes.py.
"""

import pytest

from repro.config import tiny
from repro.experiments import figures
from repro.experiments.harness import ExperimentRunner


@pytest.fixture(scope="module")
def runner():
    return ExperimentRunner(
        config=tiny(), datasets=("test-small",), pagerank_iterations=1
    )


def check(result, expected_columns, min_rows=1):
    assert result.rows, result.figure_id
    assert len(result.rows) >= min_rows
    for col in expected_columns:
        assert col in result.rows[0], (result.figure_id, col)
    text = result.render()
    assert result.figure_id in text


def test_fig01(runner):
    check(
        figures.fig01_thp_speedup(runner, workloads=("bfs",)),
        ["workload", "dataset", "thp_fresh_speedup", "thp_pressured_speedup"],
    )


def test_fig02(runner):
    check(
        figures.fig02_translation_overhead(runner, workloads=("bfs",)),
        ["translation_fraction"],
    )


def test_fig03(runner):
    check(
        figures.fig03_tlb_miss_rates(runner, workloads=("bfs",)),
        ["dtlb_miss_4k", "walk_rate_4k", "dtlb_miss_thp", "walk_rate_thp"],
    )


def test_fig04(runner):
    result = figures.fig04_access_breakdown(runner, workloads=("bfs",))
    check(result, ["array", "access_share", "walk_share"], min_rows=3)
    shares = sum(r["access_share"] for r in result.rows)
    assert shares == pytest.approx(1.0, abs=1e-6)


def test_fig05(runner):
    check(
        figures.fig05_data_structure_thp(runner),
        ["madv-vertex", "madv-edge", "madv-property", "thp"],
    )


def test_table2(runner):
    result = figures.table2_datasets(runner, workloads=("bfs", "sssp"))
    check(result, ["vertices", "edges", "footprint_bytes"], min_rows=2)
    sssp_row = next(r for r in result.rows if r["workload"] == "sssp")
    bfs_row = next(r for r in result.rows if r["workload"] == "bfs")
    assert sssp_row["footprint_bytes"] > bfs_row["footprint_bytes"]


def test_fig07(runner):
    check(
        figures.fig07_pressure_alloc_order(runner, workloads=("bfs",)),
        ["thp_ideal", "thp_natural", "thp_property_first"],
    )


def test_fig07b(runner):
    result = figures.fig07b_pressure_sweep(
        runner, levels=(0.0, 1.0)
    )
    check(result, ["free_gb", "base4k", "thp_natural"], min_rows=2)


def test_pagecache(runner):
    check(
        figures.page_cache_interference(runner),
        ["thp_tmpfs_remote", "thp_local_cache"],
    )


def test_fig08(runner):
    check(
        figures.fig08_fragmentation(runner, workloads=("bfs",)),
        ["base4k_fragmented", "thp_natural", "thp_property_first"],
    )


def test_fig09(runner):
    result = figures.fig09_frag_sweep(runner, levels=(0.0, 0.5))
    check(result, ["frag_level", "thp_natural"], min_rows=2)


def test_fig10(runner):
    check(
        figures.fig10_selective_thp(runner, workloads=("bfs",)),
        ["dbg_4k", "thp", "dbg_thp", "selective_50_dbg",
         "selective_100_dbg"],
    )


def test_fig11(runner):
    result = figures.fig11_selectivity_sweep(
        runner, fractions=(0.0, 1.0)
    )
    check(result, ["reorder", "s", "speedup"], min_rows=4)


def test_dbg_overhead(runner):
    result = figures.dbg_overhead(runner, workloads=("bfs",))
    check(result, ["preprocess_fraction"])
    assert result.rows[0]["preprocess_fraction"] > 0


def test_headline(runner):
    result = figures.headline_summary(runner, workloads=("bfs",))
    check(
        result,
        ["selective_speedup", "pct_of_unbounded", "huge_budget_frac"],
    )
    assert "geomean" in result.notes


def test_ablation_census(runner):
    result = figures.ablation_alloc_order_census(runner)
    check(result, ["policy"], min_rows=2)


def test_ablation_promotion(runner):
    check(
        figures.ablation_promotion_path(runner),
        [
            "fault+compact",
            "khugepaged-only",
            "no-compact",
            "fault+compact_prop_huge",
        ],
    )


def test_ablation_reorder(runner):
    check(
        figures.ablation_reorder(runner),
        ["original", "dbg", "degree-sort", "random"],
    )


def test_figure_result_json_and_series(runner):
    import json

    result = figures.fig03_tlb_miss_rates(runner, workloads=("bfs",))
    doc = json.loads(result.to_json())
    assert doc["figure_id"] == "fig03"
    assert doc["rows"]
    series = result.series(
        "dataset", "dtlb_miss_4k", workload="bfs"
    )
    assert "test-small" in series
