"""Crash-recovery acceptance tests (the ISSUE's core scenario).

A journaled sweep is killed mid-journal-append via the ``journal.write``
fault site; the resumed sweep must skip completed cells, re-run torn and
in-flight ones, and produce figure JSON byte-identical to an
uninterrupted run.
"""

from __future__ import annotations

import pytest

from repro.errors import InjectedFaultError
from repro.experiments.figures import fig07_pressure_alloc_order
from repro.experiments.harness import ExperimentRunner
from repro.faults import FaultPlan
from repro.runstate import RunJournal

WORKLOADS = ("bfs",)
DATASETS = ("test-small",)


def run_fig07(runner: ExperimentRunner):
    return fig07_pressure_alloc_order(
        runner, workloads=WORKLOADS, datasets=DATASETS
    )


def counting_runner(**kwargs) -> tuple[ExperimentRunner, list]:
    """A runner that counts real cell simulations."""
    runner = ExperimentRunner(**kwargs)
    simulations: list = []
    original = runner._simulate_cell

    def counting(*args, **kwargs_inner):
        simulations.append(1)
        return original(*args, **kwargs_inner)

    runner._simulate_cell = counting
    return runner, simulations


@pytest.fixture(scope="module")
def reference_json() -> str:
    """The uninterrupted run's figure JSON."""
    return run_fig07(ExperimentRunner()).to_json()


class TestCrashRecovery:
    def crash_sweep(self, journal_path: str, after: int) -> None:
        """Run fig07 until the journal's ``after``-th append crashes."""
        plan = FaultPlan.parse(f"journal.write:after={after}")
        runner = ExperimentRunner(
            journal=RunJournal(journal_path, injector=plan.make_injector())
        )
        with pytest.raises(InjectedFaultError):
            run_fig07(runner)

    def test_crash_leaves_detectable_torn_record(self, tmp_path):
        path = str(tmp_path / "run.jsonl")
        self.crash_sweep(path, after=3)
        journal = RunJournal(path)
        assert journal.torn_records == 1
        counts = journal.counts()
        assert counts["done"] == 1 and counts["running"] == 1

    def test_resume_skips_completed_and_matches_byte_identical(
        self, tmp_path, reference_json
    ):
        path = str(tmp_path / "run.jsonl")
        self.crash_sweep(path, after=3)
        resumed, simulations = counting_runner(
            journal=RunJournal(path), resume=True
        )
        result = run_fig07(resumed)
        # One cell completed before the crash; the in-flight cell and
        # the torn outcome re-run along with the never-started ones.
        assert result.to_json() == reference_json
        uninterrupted, baseline = counting_runner()
        run_fig07(uninterrupted)
        assert len(simulations) == len(baseline) - 1
        # After the resumed sweep, the journal holds every cell as done.
        final = RunJournal(path)
        assert final.counts()["done"] == len(baseline)

    def test_resume_after_later_crash_skips_more(
        self, tmp_path, reference_json
    ):
        path = str(tmp_path / "run.jsonl")
        self.crash_sweep(path, after=6)  # three cells complete
        resumed, simulations = counting_runner(
            journal=RunJournal(path), resume=True
        )
        assert run_fig07(resumed).to_json() == reference_json
        uninterrupted, baseline = counting_runner()
        run_fig07(uninterrupted)
        assert len(simulations) == len(baseline) - 3

    def test_double_crash_then_resume(self, tmp_path, reference_json):
        """Crash, resume into a second crash, then finish: each resume
        builds on every prior completed cell."""
        path = str(tmp_path / "run.jsonl")
        self.crash_sweep(path, after=3)
        plan = FaultPlan.parse("journal.write:after=4")
        second = ExperimentRunner(
            journal=RunJournal(path, injector=plan.make_injector()),
            resume=True,
        )
        with pytest.raises(InjectedFaultError):
            run_fig07(second)
        final, simulations = counting_runner(
            journal=RunJournal(path), resume=True
        )
        assert run_fig07(final).to_json() == reference_json
        uninterrupted, baseline = counting_runner()
        run_fig07(uninterrupted)
        assert 0 < len(simulations) < len(baseline)

    def test_resume_without_resume_flag_rewrites_everything(self, tmp_path):
        """A journal without resume=True records but never skips."""
        path = str(tmp_path / "run.jsonl")
        first, first_sims = counting_runner(journal=RunJournal(path))
        run_fig07(first)
        second, second_sims = counting_runner(journal=RunJournal(path))
        run_fig07(second)
        assert len(second_sims) == len(first_sims)

    def test_resumed_figure_render_matches_too(
        self, tmp_path, reference_json
    ):
        path = str(tmp_path / "run.jsonl")
        self.crash_sweep(path, after=3)
        resumed = ExperimentRunner(journal=RunJournal(path), resume=True)
        rendered = run_fig07(resumed).render()
        assert rendered == run_fig07(ExperimentRunner()).render()
