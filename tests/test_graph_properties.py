"""Property-based tests for graph structures and reordering (hypothesis)."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph.csr import CsrGraph, concat_ranges
from repro.graph.reorder import (
    dbg_bin_sizes,
    dbg_order,
    degree_sort_order,
    random_order,
)


@st.composite
def edge_lists(draw, max_vertices=24, max_edges=80):
    n = draw(st.integers(min_value=1, max_value=max_vertices))
    m = draw(st.integers(min_value=0, max_value=max_edges))
    src = draw(
        st.lists(
            st.integers(min_value=0, max_value=n - 1),
            min_size=m,
            max_size=m,
        )
    )
    dst = draw(
        st.lists(
            st.integers(min_value=0, max_value=n - 1),
            min_size=m,
            max_size=m,
        )
    )
    return n, np.array(src, dtype=np.int64), np.array(dst, dtype=np.int64)


@given(edge_lists())
@settings(max_examples=150, deadline=None)
def test_from_edges_invariants(data):
    n, src, dst = data
    g = CsrGraph.from_edges(src, dst, n)
    assert g.num_vertices == n
    assert g.num_edges == src.size
    assert g.indptr[0] == 0
    assert g.indptr[-1] == src.size
    assert (np.diff(g.indptr) >= 0).all()
    # Every input edge appears exactly once.
    out_src, out_dst = g.edge_endpoints()
    original = sorted(zip(src.tolist(), dst.tolist()))
    rebuilt = sorted(zip(out_src.tolist(), out_dst.tolist()))
    assert original == rebuilt


@given(edge_lists())
@settings(max_examples=100, deadline=None)
def test_transpose_is_involution_on_edge_multiset(data):
    n, src, dst = data
    g = CsrGraph.from_edges(src, dst, n)
    t = g.transpose()
    s1, d1 = g.edge_endpoints()
    s2, d2 = t.edge_endpoints()
    assert sorted(zip(s1.tolist(), d1.tolist())) == sorted(
        zip(d2.tolist(), s2.tolist())
    )


@given(edge_lists(), st.integers(min_value=0, max_value=2**31 - 1))
@settings(max_examples=100, deadline=None)
def test_relabel_preserves_structure(data, seed):
    n, src, dst = data
    g = CsrGraph.from_edges(src, dst, n)
    perm = np.random.default_rng(seed).permutation(n).astype(np.int64)
    r = g.relabel(perm)
    # Relabeling the edge multiset directly must give the same multiset.
    s1, d1 = r.edge_endpoints()
    expected = sorted(zip(perm[src].tolist(), perm[dst].tolist()))
    assert sorted(zip(s1.tolist(), d1.tolist())) == expected


@given(edge_lists())
@settings(max_examples=100, deadline=None)
def test_dbg_order_is_permutation_sorted_by_bin(data):
    n, src, dst = data
    g = CsrGraph.from_edges(src, dst, n)
    perm = dbg_order(g)
    assert np.array_equal(np.sort(perm), np.arange(n))
    # Hotter bins must come first: new-id order must have non-increasing
    # bin hotness, i.e. degrees ordered by bin (not strictly by degree).
    bins = dbg_bin_sizes(g)
    assert bins.sum() == n
    in_deg = g.in_degrees()
    old_in_new_order = np.argsort(perm, kind="stable")
    degrees_in_new_order = in_deg[old_in_new_order]
    # Every vertex in an earlier bin has degree >= the floor of every
    # later bin; spot-check montonicity of bin floors via thresholds.
    avg = g.average_degree
    floors = np.array([32, 16, 8, 4, 2, 1, 0.5, 0.0]) * avg
    position = 0
    for floor, count in zip(floors, bins):
        segment = degrees_in_new_order[position : position + count]
        assert (segment >= floor).all()
        position += count


@given(edge_lists())
@settings(max_examples=100, deadline=None)
def test_degree_sort_is_descending(data):
    n, src, dst = data
    g = CsrGraph.from_edges(src, dst, n)
    perm = degree_sort_order(g)
    in_deg = g.in_degrees()
    ordered = in_deg[np.argsort(perm, kind="stable")]
    assert (np.diff(ordered) <= 0).all()


@given(st.integers(min_value=1, max_value=50),
       st.integers(min_value=0, max_value=2**31 - 1))
@settings(max_examples=50, deadline=None)
def test_random_order_is_permutation(n, seed):
    g = CsrGraph.from_edges(
        np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64), n
    )
    perm = random_order(g, seed=seed)
    assert np.array_equal(np.sort(perm), np.arange(n))


@given(
    st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=100),
            st.integers(min_value=0, max_value=20),
        ),
        min_size=1,
        max_size=30,
    )
)
@settings(max_examples=100, deadline=None)
def test_concat_ranges_matches_naive(pairs):
    starts = np.array([p[0] for p in pairs], dtype=np.int64)
    counts = np.array([p[1] for p in pairs], dtype=np.int64)
    expected: list[int] = []
    for start, count in pairs:
        expected.extend(range(start, start + count))
    assert concat_ranges(starts, counts).tolist() == expected
