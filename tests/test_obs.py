"""Observability layer: tracer, schema, exporters, RunConfig and the
`repro.api` facade (docs/observability.md)."""

import json
import os
import warnings

import pytest

from repro.analysis.lint import lint_text
from repro.api import (
    ExperimentRunner,
    Machine,
    RunConfig,
    ThpPolicy,
    Tracer,
    create_workload,
    load_dataset,
)
from repro.cli import main
from repro.config import tiny
from repro.errors import ConfigError
from repro.experiments.figures import fig07_pressure_alloc_order
from repro.obs import (
    EVENT_NAMES,
    EVENT_SCHEMA,
    MetricsRegistry,
    read_trace_jsonl,
    summarize,
    to_chrome_trace,
    validate_event,
    validate_events,
    validate_trace_records,
    write_trace_jsonl,
)
from repro.obs.events import COMMON_FIELDS
from repro.obs.export import trace_lines
from repro.runstate.serialize import decode_result, encode_result

GOLDEN = os.path.join(os.path.dirname(__file__), "golden", "trace_schema.json")


def _traced_metrics(dataset="test-small", workload="bfs", policy=None):
    machine = Machine(tiny(), policy or ThpPolicy.always(), trace=True)
    graph = load_dataset(dataset).graph
    return machine.run(create_workload(workload, graph), dataset=dataset)


class TestSchema:
    def test_golden_schema_pinned(self):
        """The event taxonomy is a public contract: changing a name,
        field or unit must be a conscious golden-file update."""
        with open(GOLDEN) as fh:
            golden = json.load(fh)
        assert golden["common_fields"] == COMMON_FIELDS
        assert golden["events"] == EVENT_SCHEMA

    def test_units_are_known_families(self):
        allowed = {"count", "cycles", "name", "frames", "pages", "index"}
        for name, fields in EVENT_SCHEMA.items():
            for field_name, unit in fields.items():
                assert unit in allowed, (name, field_name, unit)

    def test_validate_event_rejects_unknown_name(self):
        record = {"seq": 0, "cycles": 0, "name": "nope.event"}
        assert validate_event(record)

    def test_validate_event_rejects_missing_field(self):
        record = {"seq": 0, "cycles": 0, "name": "thp.promotion"}
        problems = validate_event(record)
        assert any("vma" in p for p in problems)

    def test_validate_event_rejects_undeclared_field(self):
        record = {
            "seq": 0, "cycles": 0, "name": "swap.out",
            "pages": 1, "extra": 1,
        }
        problems = validate_event(record)
        assert any("extra" in p for p in problems)


class TestTracer:
    def test_emit_stamps_seq_and_clock(self):
        clock = {"now": 100}
        tracer = Tracer(clock=lambda: clock["now"])
        tracer.emit("swap.out", pages=2)
        clock["now"] = 250
        tracer.emit("swap.in", pages=2)
        first, second = tracer.events
        assert (first["seq"], first["cycles"]) == (0, 100)
        assert (second["seq"], second["cycles"]) == (1, 250)

    def test_metrics_registry_counts_events_and_fields(self):
        tracer = Tracer()
        tracer.emit("swap.out", pages=3)
        tracer.emit("swap.out", pages=4)
        snap = tracer.metrics.snapshot()
        assert snap["counters"]["event.swap.out"] == 2
        assert snap["counters"]["swap.out.pages"] == 7

    def test_drain_resets_everything(self):
        tracer = Tracer()
        tracer.emit("swap.out", pages=1)
        events = tracer.drain()
        assert len(events) == 1
        assert tracer.events == []
        assert tracer.metrics.snapshot() == {"counters": {}, "gauges": {}}
        tracer.emit("swap.in", pages=1)
        assert tracer.events[0]["seq"] == 0  # seq restarts per drain

    def test_registry_gauges(self):
        registry = MetricsRegistry()
        registry.gauge("free_frames", 42)
        registry.gauge("free_frames", 17)
        assert registry.snapshot()["gauges"]["free_frames"] == 17


class TestMachineTracing:
    def test_traced_run_emits_valid_schema(self):
        metrics = _traced_metrics()
        assert metrics.trace, "traced run produced no events"
        assert validate_events(metrics.trace) == []
        names = {event["name"] for event in metrics.trace}
        assert names <= set(EVENT_NAMES)
        # The three run phases always bracket the trace.
        phases = [
            e["phase"] for e in metrics.trace if e["name"] == "phase.begin"
        ]
        assert phases == ["load", "init", "compute"]

    def test_obs_metrics_snapshot_rides_on_run_metrics(self):
        metrics = _traced_metrics()
        counters = metrics.obs_metrics["counters"]
        assert counters["event.phase.begin"] == 3
        assert counters["event.phase.end"] == 3

    def test_tracing_off_is_empty_and_identical(self):
        on = _traced_metrics()
        machine = Machine(tiny(), ThpPolicy.always())
        graph = load_dataset("test-small").graph
        off = machine.run(create_workload("bfs", graph), dataset="test-small")
        assert off.trace == [] and off.obs_metrics == {}
        assert off.total_cycles == on.total_cycles
        assert off.translation.total_walks == on.translation.total_walks

    def test_trace_round_trips_through_journal_codec(self):
        metrics = _traced_metrics()
        decoded = decode_result(
            json.loads(json.dumps(encode_result(metrics)))
        )
        assert decoded.trace == metrics.trace
        assert decoded.obs_metrics == metrics.obs_metrics


class TestRunConfig:
    def test_defaults_validate(self):
        config = RunConfig()
        assert config.workers == 1 and config.trace is False

    def test_rejects_nonsense(self):
        with pytest.raises(ConfigError):
            RunConfig(workers=-1)
        with pytest.raises(ConfigError):
            RunConfig(retries=-1)
        with pytest.raises(ConfigError):
            RunConfig(cell_budget=0)
        with pytest.raises(ConfigError):
            RunConfig(resume=True)  # resume needs a journal

    def test_normalizes_journal_path_and_fault_string(self, tmp_path):
        from repro.faults import FaultPlan
        from repro.runstate import RunJournal

        config = RunConfig(
            journal=str(tmp_path / "j.jsonl"), faults="compaction:1.0"
        )
        assert isinstance(config.journal, RunJournal)
        assert isinstance(config.faults, FaultPlan)

    def test_legacy_kwargs_warn_and_fold_in(self):
        with pytest.warns(DeprecationWarning, match="workers"):
            runner = ExperimentRunner(workers=4)
        assert runner.run_config.workers == 4
        assert runner.workers == 4

    def test_unknown_kwarg_is_type_error(self):
        with pytest.raises(TypeError):
            ExperimentRunner(wrkers=4)

    def test_attribute_views_write_through(self):
        runner = ExperimentRunner()
        runner.cell_budget = 10
        assert runner.run_config.cell_budget == 10
        with pytest.raises(ConfigError):
            runner.max_retries = -1


class TestHarnessTraceLog:
    def _cells(self):
        from repro.api import POLICIES, SCENARIOS

        return [
            ("bfs", "test-small", POLICIES["base4k"], SCENARIOS["fresh"]),
            ("bfs", "test-small", POLICIES["thp"], SCENARIOS["fresh"]),
        ]

    def _runner(self, **kwargs):
        return ExperimentRunner(
            config=tiny(),
            run_config=RunConfig(trace=True, **kwargs),
            datasets=("test-small",),
        )

    def test_trace_log_accumulates_in_spec_order(self):
        runner = self._runner()
        runner.run_cells(self._cells())
        assert [entry["cell"]["policy"] for entry in runner.trace_log] == [
            "base4k", "thp",
        ]
        for entry in runner.trace_log:
            assert validate_events(entry["events"]) == []

    def test_cache_hits_do_not_duplicate_trace(self):
        runner = self._runner()
        cells = self._cells()
        runner.run_cells(cells)
        runner.run_cells(cells)
        assert len(runner.trace_log) == 2

    def test_serial_vs_parallel_traces_byte_identical(self):
        serial = ExperimentRunner(
            run_config=RunConfig(trace=True, workers=1)
        )
        parallel = ExperimentRunner(
            run_config=RunConfig(trace=True, workers=4)
        )
        kwargs = {"workloads": ("bfs",), "datasets": ("kron-s",)}
        serial_fig = fig07_pressure_alloc_order(serial, **kwargs)
        parallel_fig = fig07_pressure_alloc_order(parallel, **kwargs)
        # Figure output and trace bytes both match the serial run.
        assert parallel_fig.to_json() == serial_fig.to_json()
        assert serial.trace_log, "traced sweep produced no trace"
        assert trace_lines(parallel.trace_log) == trace_lines(
            serial.trace_log
        )


class TestExporters:
    def test_jsonl_round_trip(self, tmp_path):
        runner = ExperimentRunner(
            config=tiny(),
            run_config=RunConfig(trace=True),
            datasets=("test-small",),
        )
        from repro.api import POLICIES, SCENARIOS

        runner.run_cell(
            "bfs", "test-small", POLICIES["thp"], SCENARIOS["fresh"]
        )
        path = str(tmp_path / "trace.jsonl")
        count = write_trace_jsonl(path, runner.trace_log)
        records = read_trace_jsonl(path)
        assert len(records) == count > 0
        assert validate_trace_records(records) == []
        # Cell coordinates ride on every line.
        assert records[0]["workload"] == "bfs"
        assert records[0]["policy"] == "thp"

    def test_chrome_trace_structure(self):
        metrics = _traced_metrics()
        records = [
            dict(
                {
                    "workload": "bfs", "dataset": "test-small",
                    "policy": "thp", "scenario": "fresh",
                },
                **event,
            )
            for event in metrics.trace
        ]
        chrome = to_chrome_trace(records)
        assert chrome["displayTimeUnit"] == "ns"
        events = chrome["traceEvents"]
        phases = [e["ph"] for e in events if e["ph"] in ("B", "E")]
        assert phases.count("B") == phases.count("E") == 3
        assert any(e["ph"] == "M" for e in events)  # process_name metadata

    def test_summary_names_cells_and_counts(self):
        metrics = _traced_metrics()
        records = [
            dict(
                {
                    "workload": "bfs", "dataset": "test-small",
                    "policy": "thp", "scenario": "fresh",
                },
                **event,
            )
            for event in metrics.trace
        ]
        text = summarize(records)
        assert "bfs/test-small" in text
        assert "phase.begin" in text

    def test_summarize_empty(self):
        assert "empty" in summarize([])


class TestCli:
    def test_run_with_trace_then_summary_and_export(self, tmp_path, capsys):
        trace_path = str(tmp_path / "run.jsonl")
        assert (
            main(
                [
                    "run", "--workload", "bfs", "--dataset", "test-small",
                    "--policy", "thp", "--scenario", "fresh",
                    "--profile", "tiny", "--trace", trace_path,
                ]
            )
            == 0
        )
        assert os.path.exists(trace_path)
        capsys.readouterr()

        assert main(["trace", "summary", trace_path]) == 0
        out = capsys.readouterr().out
        assert "bfs/test-small" in out

        out_path = str(tmp_path / "run.json")
        assert main(["trace", "export", trace_path, "--out", out_path]) == 0
        with open(out_path) as fh:
            chrome = json.load(fh)
        assert "traceEvents" in chrome

    def test_trace_summary_rejects_garbage(self, tmp_path, capsys):
        path = tmp_path / "bad.jsonl"
        path.write_text("not json\n")
        assert main(["trace", "summary", str(path)]) == 2


class TestRep008:
    def test_flags_unguarded_emit(self):
        findings = lint_text(
            "def f(tracer):\n"
            "    tracer.emit('thp.promotion')\n"
        )
        assert [f.rule for f in findings] == ["REP008"]

    def test_accepts_guarded_emit(self):
        assert (
            lint_text(
                "def f(self):\n"
                "    tracer = self.tracer\n"
                "    if tracer is not None:\n"
                "        tracer.emit('thp.promotion')\n"
            )
            == []
        )

    def test_guard_does_not_leak_into_else(self):
        findings = lint_text(
            "def f(tracer):\n"
            "    if tracer is not None:\n"
            "        pass\n"
            "    else:\n"
            "        tracer.emit('thp.promotion')\n"
        )
        assert [f.rule for f in findings] == ["REP008"]

    def test_and_chain_guard_accepted(self):
        assert (
            lint_text(
                "def f(tracer, n):\n"
                "    if n > 0 and tracer is not None:\n"
                "        tracer.emit('swap.out', pages=n)\n"
            )
            == []
        )

    def test_non_tracer_emit_ignored(self):
        assert lint_text("def f(bus):\n    bus.emit('x')\n") == []


class TestApiFacade:
    def test_all_names_resolve(self):
        import repro.api as api

        for name in api.__all__:
            assert getattr(api, name) is not None

    def test_deprecated_kwargs_still_work_end_to_end(self):
        from repro.api import POLICIES, SCENARIOS

        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            runner = ExperimentRunner(config=tiny(), max_retries=1)
        result = runner.run_cell(
            "bfs", "test-small", POLICIES["base4k"], SCENARIOS["fresh"]
        )
        assert result.ok
