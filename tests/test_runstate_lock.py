"""Tests for the journal pidfile lock and the `repro runs gc` guard.

The lock serializes journal *owners*: a live sweep or server owns its
journal, and maintenance (`runs gc`) or a second writer must refuse to
touch it while the owner is alive.  Stale locks (dead owners — crashed
or SIGKILLed runs) are broken silently: crash recovery never requires
manual cleanup.
"""

from __future__ import annotations

import os
import subprocess
import sys

import pytest

from repro.cli import main as cli_main
from repro.errors import JournalLockedError
from repro.runstate import RunJournal, live_holder, lock_path_for
from repro.runstate.lock import PidLock, pid_alive, read_holder


@pytest.fixture
def dead_pid() -> int:
    """A PID that recently existed but is now certainly dead."""
    proc = subprocess.Popen([sys.executable, "-c", "pass"])
    proc.wait()
    return proc.pid


class TestPidLock:
    def test_acquire_writes_pid_release_removes(self, tmp_path):
        path = str(tmp_path / "run.jsonl")
        lock = PidLock(path)
        lock.acquire()
        assert lock.owned
        assert read_holder(lock_path_for(path)) == os.getpid()
        lock.release()
        assert not lock.owned
        assert not os.path.exists(lock_path_for(path))

    def test_release_is_idempotent(self, tmp_path):
        lock = PidLock(str(tmp_path / "run.jsonl"))
        lock.acquire()
        lock.release()
        lock.release()

    def test_same_process_reacquires(self, tmp_path):
        path = str(tmp_path / "run.jsonl")
        first = PidLock(path)
        first.acquire()
        second = PidLock(path)
        second.acquire()  # must not raise: same pid owns it
        assert second.owned
        first.release()

    def test_live_foreign_owner_blocks(self, tmp_path):
        path = str(tmp_path / "run.jsonl")
        # PID 1 is always alive and never us.
        with open(lock_path_for(path), "w", encoding="utf-8") as handle:
            handle.write("1\n")
        with pytest.raises(JournalLockedError):
            PidLock(path).acquire()

    def test_stale_lock_broken_silently(self, tmp_path, dead_pid):
        path = str(tmp_path / "run.jsonl")
        with open(lock_path_for(path), "w", encoding="utf-8") as handle:
            handle.write(f"{dead_pid}\n")
        lock = PidLock(path)
        lock.acquire()  # dead owner: acquisition must succeed
        assert read_holder(lock_path_for(path)) == os.getpid()
        lock.release()

    def test_garbled_lock_broken_silently(self, tmp_path):
        path = str(tmp_path / "run.jsonl")
        with open(lock_path_for(path), "w", encoding="utf-8") as handle:
            handle.write("not a pid\n")
        lock = PidLock(path)
        lock.acquire()
        lock.release()

    def test_context_manager(self, tmp_path):
        path = str(tmp_path / "run.jsonl")
        with PidLock(path) as lock:
            assert lock.owned
        assert not os.path.exists(lock_path_for(path))

    def test_pid_alive(self, dead_pid):
        assert pid_alive(os.getpid())
        assert not pid_alive(dead_pid)
        assert not pid_alive(0)
        assert not pid_alive(-1)

    def test_live_holder(self, tmp_path, dead_pid):
        path = str(tmp_path / "run.jsonl")
        assert live_holder(path) is None  # no lock at all
        with open(lock_path_for(path), "w", encoding="utf-8") as handle:
            handle.write(f"{dead_pid}\n")
        assert live_holder(path) is None  # stale
        with open(lock_path_for(path), "w", encoding="utf-8") as handle:
            handle.write(f"{os.getpid()}\n")
        assert live_holder(path) == os.getpid()
        os.unlink(lock_path_for(path))


class TestJournalLocking:
    def test_locked_journal_blocks_second_owner(self, tmp_path, monkeypatch):
        path = str(tmp_path / "run.jsonl")
        journal = RunJournal(path, lock=True)
        # Simulate a *different* live process owning the lock: rewrite
        # the holder to PID 1 so a second lock=True journal must refuse.
        with open(lock_path_for(path), "w", encoding="utf-8") as handle:
            handle.write("1\n")
        with pytest.raises(JournalLockedError):
            RunJournal(path, lock=True)
        with open(lock_path_for(path), "w", encoding="utf-8") as handle:
            handle.write(f"{os.getpid()}\n")
        journal.close()
        assert not os.path.exists(lock_path_for(path))

    def test_close_is_idempotent_and_unlocked_journal_has_no_lock(
        self, tmp_path
    ):
        path = str(tmp_path / "run.jsonl")
        journal = RunJournal(path)  # lock=False default
        assert not os.path.exists(lock_path_for(path))
        journal.close()
        journal.close()


class TestRunsGcGuard:
    """Regression: `repro runs gc` must refuse a live run's journal."""

    def _sweep(self, tmp_path) -> str:
        journal = str(tmp_path / "run.jsonl")
        assert cli_main([
            "run", "--workload", "bfs", "--dataset", "test-small",
            "--profile", "tiny", "--journal", journal,
        ]) == 0
        return journal

    def test_gc_refused_while_owner_lives(self, tmp_path, capsys):
        journal = self._sweep(tmp_path)
        # Forge a live foreign owner (PID 1): gc must refuse, exit 2,
        # and leave the journal bytes untouched.
        with open(lock_path_for(journal), "w", encoding="utf-8") as handle:
            handle.write("1\n")
        with open(journal, "rb") as handle:
            before = handle.read()
        code = cli_main(["runs", "gc", "--journal", journal])
        assert code == 2
        captured = capsys.readouterr()
        assert "refusing to gc" in captured.err
        with open(journal, "rb") as handle:
            assert handle.read() == before
        os.unlink(lock_path_for(journal))

    def test_gc_proceeds_after_owner_exits(self, tmp_path, dead_pid, capsys):
        journal = self._sweep(tmp_path)
        # A stale lock (dead owner) must not block maintenance.
        with open(lock_path_for(journal), "w", encoding="utf-8") as handle:
            handle.write(f"{dead_pid}\n")
        assert cli_main(["runs", "gc", "--journal", journal]) == 0
        captured = capsys.readouterr()
        assert "kept 1 completed cell" in captured.out

    def test_cli_sweep_releases_lock_at_command_end(self, tmp_path):
        journal = self._sweep(tmp_path)
        # The in-process `repro run` above finished: its lock is gone,
        # so gc needs no forgiveness window.
        assert live_holder(journal) is None
        assert cli_main(["runs", "gc", "--journal", journal]) == 0
