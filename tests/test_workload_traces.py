"""Tests for the *traces* workloads emit (the paper's Fig. 4 pattern).

These check the instrumentation itself: access counts, interleaving and
array attribution must reflect the push-based inner loop — one edge-array
read and one pointer-indirect property access per processed edge, with
values-array reads for SSSP and rank reads for PageRank.
"""

import numpy as np

from repro.graph.generators import path_graph, uniform_graph
from repro.workloads.base import (
    ARRAY_EDGE,
    ARRAY_PROPERTY,
    ARRAY_RANK,
    ARRAY_VALUES,
    ARRAY_VERTEX,
)
from repro.workloads.bfs import Bfs
from repro.workloads.pagerank import PageRank
from repro.workloads.sssp import Sssp


def collect(workload):
    streams = list(workload.run())
    ids = np.concatenate([s.array_ids for s in streams])
    idx = np.concatenate([s.indices for s in streams])
    return streams, ids, idx


class TestBfsTrace:
    def test_edge_and_property_counts_match_processed_edges(
        self, small_graph
    ):
        bfs = Bfs(small_graph, root=0)
        streams, ids, idx = collect(bfs)
        edge_accesses = np.count_nonzero(ids == ARRAY_EDGE)
        prop_accesses = np.count_nonzero(ids == ARRAY_PROPERTY)
        assert edge_accesses == prop_accesses
        # Every processed vertex contributes 2 vertex-array reads.
        vertex_accesses = np.count_nonzero(ids == ARRAY_VERTEX)
        assert vertex_accesses % 2 == 0

    def test_property_targets_are_edge_destinations(self):
        g = path_graph(4)
        bfs = Bfs(g, root=0)
        streams, ids, idx = collect(bfs)
        # Path: frontier {0} -> edge 0 -> prop 1; {1} -> prop 2; etc.
        prop_targets = idx[ids == ARRAY_PROPERTY]
        assert prop_targets.tolist() == [1, 2, 3]
        edge_positions = idx[ids == ARRAY_EDGE]
        assert edge_positions.tolist() == [0, 1, 2]

    def test_interleaving_edge_then_property(self):
        """Within a stream, each edge read is immediately followed by its
        property access (the Fig. 4 inner loop)."""
        g = uniform_graph(64, 512, seed=4)
        bfs = Bfs(g)
        streams = list(bfs.run())
        stream = max(streams, key=len)
        ids = stream.array_ids
        edge_positions = np.flatnonzero(ids == ARRAY_EDGE)
        following = ids[edge_positions + 1]
        assert (following == ARRAY_PROPERTY).all()

    def test_vertex_reads_precede_edge_bursts(self):
        g = path_graph(3)
        bfs = Bfs(g, root=0)
        streams = list(bfs.run())
        first = streams[0]
        # vertex[u], vertex[u+1], edge, property.
        assert first.array_ids.tolist() == [
            ARRAY_VERTEX,
            ARRAY_VERTEX,
            ARRAY_EDGE,
            ARRAY_PROPERTY,
        ]
        assert first.indices.tolist() == [0, 1, 0, 1]

    def test_one_stream_per_worklist(self):
        bfs = Bfs(path_graph(5), root=0)
        streams = list(bfs.run())
        # Frontiers {0}..{4}: the final vertex is still processed (its
        # empty neighbor list is scanned), so 5 streams are emitted.
        assert len(streams) == 5
        assert bfs.iterations == 5


class TestSsspTrace:
    def test_values_read_per_edge(self, small_weighted_graph):
        sssp = Sssp(small_weighted_graph, root=0)
        streams, ids, idx = collect(sssp)
        edge_accesses = np.count_nonzero(ids == ARRAY_EDGE)
        values_accesses = np.count_nonzero(ids == ARRAY_VALUES)
        assert edge_accesses == values_accesses

    def test_source_property_read_per_worklist_vertex(
        self, small_weighted_graph
    ):
        sssp = Sssp(small_weighted_graph, root=0)
        streams, ids, idx = collect(sssp)
        vertex_accesses = np.count_nonzero(ids == ARRAY_VERTEX)
        # Two vertex reads and one source-property read per vertex, so
        # property accesses = edges + vertices_processed.
        prop = np.count_nonzero(ids == ARRAY_PROPERTY)
        edges = np.count_nonzero(ids == ARRAY_EDGE)
        assert prop == edges + vertex_accesses // 2


class TestPageRankTrace:
    def test_rank_reads_once_per_vertex_per_iteration(self, small_graph):
        pr = PageRank(small_graph, max_iterations=2)
        streams, ids, idx = collect(pr)
        rank_reads = np.count_nonzero(ids == ARRAY_RANK)
        # Per iteration: V rank reads in the edge phase + V in the
        # end-of-iteration sweep.
        assert rank_reads == 2 * 2 * small_graph.num_vertices

    def test_property_accesses_scale_with_iterations(self, small_graph):
        pr1 = PageRank(small_graph, max_iterations=1)
        _, ids1, _ = collect(pr1)
        pr3 = PageRank(small_graph, max_iterations=3)
        _, ids3, _ = collect(pr3)
        prop1 = np.count_nonzero(ids1 == ARRAY_PROPERTY)
        prop3 = np.count_nonzero(ids3 == ARRAY_PROPERTY)
        assert prop3 == 3 * prop1

    def test_every_edge_touched_each_iteration(self, small_graph):
        pr = PageRank(small_graph, max_iterations=1)
        _, ids, idx = collect(pr)
        edge_positions = idx[ids == ARRAY_EDGE]
        assert np.array_equal(
            np.sort(edge_positions), np.arange(small_graph.num_edges)
        )


class TestArrayDeclarations:
    def test_bfs_arrays(self, small_graph):
        assert Bfs(small_graph).array_ids() == (
            ARRAY_VERTEX,
            ARRAY_EDGE,
            ARRAY_PROPERTY,
        )

    def test_sssp_arrays(self, small_weighted_graph):
        assert Sssp(small_weighted_graph).array_ids() == (
            ARRAY_VERTEX,
            ARRAY_EDGE,
            ARRAY_VALUES,
            ARRAY_PROPERTY,
        )

    def test_pagerank_arrays(self, small_graph):
        assert PageRank(small_graph).array_ids() == (
            ARRAY_VERTEX,
            ARRAY_EDGE,
            ARRAY_RANK,
            ARRAY_PROPERTY,
        )

    def test_array_elements(self, small_graph):
        bfs = Bfs(small_graph)
        assert bfs.array_elements(ARRAY_VERTEX) == 257
        assert bfs.array_elements(ARRAY_EDGE) == small_graph.num_edges
        assert bfs.array_elements(ARRAY_PROPERTY) == 256
