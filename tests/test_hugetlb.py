"""Tests for the hugetlbfs-style explicit reservation pool."""

import numpy as np
import pytest

from repro.config import tiny
from repro.core.plan import PlacementPlan
from repro.errors import (
    AllocationError,
    ConfigError,
    OutOfMemoryError,
)
from repro.graph.generators import uniform_graph
from repro.machine.machine import Machine
from repro.mem.hugetlb import HugetlbPool
from repro.mem.physical import FrameState
from repro.mem.thp import ThpPolicy
from repro.mem.vmm import VirtualMemoryManager
from repro.workloads.base import ARRAY_PROPERTY
from repro.workloads.bfs import Bfs


class TestPool:
    def test_reserve_pins_regions(self, node):
        pool = HugetlbPool(node)
        assert pool.reserve(3) == 3
        assert pool.available == 3
        assert pool.reserved == 3
        pinned = np.count_nonzero(node.state == FrameState.PINNED)
        assert pinned == 3 * node.frames_per_region

    def test_reserve_caps_at_available_regions(self, node):
        pool = HugetlbPool(node)
        got = pool.reserve(node.num_regions + 10)
        assert got == node.num_regions

    def test_take_and_give_back(self, node):
        pool = HugetlbPool(node)
        pool.reserve(1)
        region = pool.take()
        assert pool.available == 0
        with pytest.raises(OutOfMemoryError):
            pool.take()
        pool.give_back(region)
        assert pool.available == 1
        with pytest.raises(AllocationError):
            pool.give_back(region)  # not taken anymore

    def test_release(self, node):
        pool = HugetlbPool(node)
        pool.reserve(4)
        pool.take()
        pool.release()
        assert node.free_frame_count == node.num_frames

    def test_reservation_survives_fragmentation(self, node):
        """The boot-time property: frag cannot touch reserved regions."""
        from repro.mem.frag import Fragmenter

        pool = HugetlbPool(node)
        pool.reserve(2)
        Fragmenter(node).fragment(1.0)
        assert pool.available == 2


class TestVmmIntegration:
    def test_back_chunk_from_pool(self, node, tiny_cfg):
        vmm = VirtualMemoryManager(node, ThpPolicy.never(), tiny_cfg)
        pool = HugetlbPool(node)
        pool.reserve(2)
        vma = vmm.mmap("property_array", 2 * tiny_cfg.pages.huge_page_size)
        vmm.back_chunk_from_pool(vma, 0, pool)
        assert vma.is_huge[: tiny_cfg.pages.frames_per_huge].all()
        assert pool.available == 1
        # Double-mapping the same chunk is an error.
        with pytest.raises(AllocationError):
            vmm.back_chunk_from_pool(vma, 0, pool)

    def test_pooled_chunks_cannot_be_demoted(self, node, tiny_cfg):
        vmm = VirtualMemoryManager(node, ThpPolicy.never(), tiny_cfg)
        pool = HugetlbPool(node)
        pool.reserve(1)
        vma = vmm.mmap("property_array", tiny_cfg.pages.huge_page_size)
        vmm.back_chunk_from_pool(vma, 0, pool)
        with pytest.raises(AllocationError):
            vmm.demote_chunk(vma, 0)

    def test_unmap_returns_regions_to_pool(self, node, tiny_cfg):
        vmm = VirtualMemoryManager(node, ThpPolicy.never(), tiny_cfg)
        pool = HugetlbPool(node)
        pool.reserve(1)
        vma = vmm.mmap("property_array", tiny_cfg.pages.huge_page_size)
        vmm.back_chunk_from_pool(vma, 0, pool)
        vmm.touch(vma)
        vmm.unmap(vma)
        assert pool.available == 1
        assert pool.reserved == 1

    def test_partial_chunk_rejected(self, node, tiny_cfg):
        vmm = VirtualMemoryManager(node, ThpPolicy.never(), tiny_cfg)
        pool = HugetlbPool(node)
        pool.reserve(1)
        vma = vmm.mmap("property_array", tiny_cfg.pages.base_page_size)
        with pytest.raises(AllocationError):
            vmm.back_chunk_from_pool(vma, 0, pool)


class TestMachineIntegration:
    def test_plan_validation(self):
        with pytest.raises(ConfigError):
            PlacementPlan(
                advise_fractions={ARRAY_PROPERTY: 1.0},
                hugetlb_fractions={ARRAY_PROPERTY: 1.0},
            )

    def test_regions_needed(self, tiny_cfg):
        plan = PlacementPlan(hugetlb_fractions={ARRAY_PROPERTY: 1.0})
        huge = tiny_cfg.pages.huge_page_size
        assert plan.hugetlb_regions_needed(
            {ARRAY_PROPERTY: 3 * huge + 1}, huge
        ) == 4

    def test_end_to_end_property_backed(self):
        graph = uniform_graph(16384, 65536, seed=4)
        machine = Machine(tiny(), ThpPolicy.never())
        machine.reserve_hugetlb(4)
        plan = PlacementPlan(
            hugetlb_fractions={ARRAY_PROPERTY: 1.0}, label="hugetlb"
        )
        metrics = machine.run(Bfs(graph), plan=plan)
        assert metrics.huge_fraction_per_array["property_array"] > 0.9
        assert metrics.huge_fraction_per_array["edge_array"] == 0.0
        # The pool is intact for the next run.
        assert machine.hugetlb_pool.available == 4

    def test_reservation_immune_to_pressure_and_frag(self):
        """The key contrast with THP: reserve at boot, then memhog +
        full fragmentation, and the property array still gets its huge
        pages."""
        graph = uniform_graph(16384, 65536, seed=4)
        machine = Machine(tiny(), ThpPolicy.never())
        machine.reserve_hugetlb(2)
        from repro.workloads.layout import MemoryLayout

        wss = MemoryLayout(Bfs(graph)).total_bytes
        machine.memhog_leave_free(wss + 4 * 4096)
        machine.fragment(1.0)
        machine.finish_setup()
        plan = PlacementPlan(
            hugetlb_fractions={ARRAY_PROPERTY: 1.0}, label="hugetlb"
        )
        metrics = machine.run(Bfs(graph), plan=plan)
        assert metrics.huge_fraction_per_array["property_array"] > 0.9
