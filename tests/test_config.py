"""Unit tests for machine configuration profiles."""

import pytest

from repro.config import (
    CostModel,
    MachineConfig,
    PageConfig,
    TlbConfig,
    TlbGeometry,
    get_profile,
    paper_x86,
    scaled,
    tiny,
)
from repro.errors import ConfigError
from repro.units import GiB, KiB, MiB


class TestTlbGeometry:
    def test_sets(self):
        geo = TlbGeometry(entries=64, ways=4)
        assert geo.sets == 16

    def test_fully_associative(self):
        geo = TlbGeometry(entries=8, ways=8)
        assert geo.sets == 1

    def test_rejects_non_divisible_ways(self):
        with pytest.raises(ConfigError):
            TlbGeometry(entries=10, ways=4)

    def test_rejects_non_power_of_two_sets(self):
        with pytest.raises(ConfigError):
            TlbGeometry(entries=12, ways=2)  # 6 sets

    def test_rejects_non_positive(self):
        with pytest.raises(ConfigError):
            TlbGeometry(entries=0, ways=1)
        with pytest.raises(ConfigError):
            TlbGeometry(entries=4, ways=0)


class TestPageConfig:
    def test_frames_per_huge(self):
        pages = PageConfig(base_page_size=4 * KiB, huge_page_size=2 * MiB)
        assert pages.frames_per_huge == 512

    def test_shifts(self):
        pages = PageConfig(base_page_size=4 * KiB, huge_page_size=2 * MiB)
        assert pages.base_shift == 12
        assert pages.huge_shift == 21

    def test_rejects_non_power_of_two(self):
        with pytest.raises(ConfigError):
            PageConfig(base_page_size=5000, huge_page_size=2 * MiB)

    def test_rejects_huge_not_larger(self):
        with pytest.raises(ConfigError):
            PageConfig(base_page_size=4 * KiB, huge_page_size=4 * KiB)


class TestProfiles:
    def test_paper_profile_matches_table1(self):
        cfg = paper_x86()
        assert cfg.pages.base_page_size == 4 * KiB
        assert cfg.pages.huge_page_size == 2 * MiB
        assert cfg.tlb.l1_base.entries == 64
        assert cfg.tlb.l1_huge.entries == 32
        assert cfg.tlb.l2.entries == 1536
        assert cfg.node_memory_bytes == 64 * GiB
        assert cfg.gb_equivalent == GiB

    def test_scaled_preserves_coverage_ratio_regime(self):
        """Footprint/STLB-reach ratio in the paper's regime (>= 4x for a
        1MB property array)."""
        cfg = scaled()
        stlb_reach = cfg.tlb.l2.entries * cfg.pages.base_page_size
        property_bytes = 131_072 * 8
        assert property_bytes / stlb_reach >= 4
        # And the huge-page STLB reach covers the property array.
        huge_reach = cfg.tlb.l2.entries * cfg.pages.huge_page_size
        assert huge_reach >= property_bytes

    def test_scaled_gb_equivalent(self):
        assert scaled().gb_equivalent == MiB

    def test_node_memory_is_whole_regions(self):
        for make in (paper_x86, scaled, tiny):
            cfg = make()
            assert (
                cfg.node_memory_bytes % cfg.pages.huge_page_size == 0
            )
            assert cfg.frames_per_node == (
                cfg.huge_regions_per_node * cfg.pages.frames_per_huge
            )

    def test_get_profile(self):
        assert get_profile("scaled").name == "scaled"
        assert get_profile("tiny").name == "tiny"
        with pytest.raises(ConfigError):
            get_profile("nope")

    def test_with_overrides(self):
        cfg = tiny().with_overrides(swap_enabled=False)
        assert cfg.swap_enabled is False
        assert cfg.name == "tiny"

    def test_rejects_partial_region_node(self):
        with pytest.raises(ConfigError):
            MachineConfig(
                name="bad",
                pages=PageConfig(4 * KiB, 64 * KiB),
                tlb=tiny().tlb,
                node_memory_bytes=64 * KiB + 4 * KiB,
            )

    def test_rejects_zero_nodes(self):
        with pytest.raises(ConfigError):
            MachineConfig(
                name="bad",
                pages=PageConfig(4 * KiB, 64 * KiB),
                tlb=tiny().tlb,
                node_memory_bytes=4 * MiB,
                num_nodes=0,
            )


class TestCostModel:
    def test_defaults_are_ordered(self):
        """Costs must respect the hardware hierarchy: L1 < L2 < walk <
        fault < swap."""
        cost = CostModel()
        assert cost.l1_tlb_hit < cost.l2_tlb_hit < cost.page_walk
        assert cost.page_walk < cost.minor_fault
        assert cost.minor_fault < cost.swap_out <= cost.swap_in
