"""Workload correctness tests against networkx oracles.

The kernels must be semantically correct graph algorithms — the paper's
experiments only make sense if the traced execution is a real BFS/SSSP/
PageRank.
"""

import networkx as nx
import numpy as np
import pytest

from repro.errors import WorkloadError
from repro.graph.csr import CsrGraph
from repro.graph.generators import path_graph, uniform_graph
from repro.workloads.base import default_root
from repro.workloads.bfs import UNVISITED, Bfs
from repro.workloads.pagerank import PageRank
from repro.workloads.registry import (
    create_workload,
    workload_names,
    workload_needs_weights,
)
from repro.workloads.sssp import INFINITY, Sssp


def drain(workload):
    """Run a workload to completion, returning total accesses traced."""
    return sum(len(stream) for stream in workload.run())


def to_networkx(graph: CsrGraph, weighted=False) -> nx.MultiDiGraph:
    """Oracle conversion.  MultiDiGraph is essential: the generators keep
    duplicate edges, and collapsing them would change both shortest paths
    (DiGraph keeps an arbitrary surviving weight) and PageRank mass."""
    g = nx.MultiDiGraph()
    g.add_nodes_from(range(graph.num_vertices))
    src, dst = graph.edge_endpoints()
    if weighted:
        g.add_weighted_edges_from(
            zip(src.tolist(), dst.tolist(), graph.weights.tolist())
        )
    else:
        g.add_edges_from(zip(src.tolist(), dst.tolist()))
    return g


class TestBfs:
    def test_path_graph_distances(self):
        bfs = Bfs(path_graph(6), root=0)
        drain(bfs)
        assert bfs.result().tolist() == [0, 1, 2, 3, 4, 5]

    def test_matches_networkx(self, small_graph):
        root = default_root(small_graph)
        bfs = Bfs(small_graph, root=root)
        drain(bfs)
        expected = nx.single_source_shortest_path_length(
            to_networkx(small_graph), root
        )
        result = bfs.result()
        for v in range(small_graph.num_vertices):
            if v in expected:
                assert result[v] == expected[v], v
            else:
                assert result[v] == UNVISITED, v

    def test_unreachable_marked(self):
        g = CsrGraph.from_edges(np.array([0]), np.array([1]), 3)
        bfs = Bfs(g, root=0)
        drain(bfs)
        assert bfs.result().tolist() == [0, 1, UNVISITED]

    def test_rerun_is_idempotent(self, small_graph):
        bfs = Bfs(small_graph, root=0)
        drain(bfs)
        first = bfs.result().copy()
        drain(bfs)
        assert np.array_equal(bfs.result(), first)


class TestSssp:
    def test_requires_weights(self, small_graph):
        with pytest.raises(WorkloadError):
            Sssp(small_graph)

    def test_matches_dijkstra(self, small_weighted_graph):
        root = default_root(small_weighted_graph)
        sssp = Sssp(small_weighted_graph, root=root)
        drain(sssp)
        expected = nx.single_source_dijkstra_path_length(
            to_networkx(small_weighted_graph, weighted=True), root
        )
        result = sssp.result()
        for v in range(small_weighted_graph.num_vertices):
            if v in expected:
                assert result[v] == expected[v], v
            else:
                assert result[v] == INFINITY, v

    def test_weighted_path(self):
        g = path_graph(5, weighted=True)
        sssp = Sssp(g, root=0)
        drain(sssp)
        assert sssp.result().tolist() == [0, 1, 2, 3, 4]


class TestPageRank:
    def test_matches_networkx(self, small_graph):
        pr = PageRank(small_graph, max_iterations=100, epsilon=1e-10)
        drain(pr)
        assert pr.converged
        expected = nx.pagerank(
            to_networkx(small_graph), alpha=0.85, tol=1e-12, max_iter=200
        )
        result = pr.result()
        assert result.sum() == pytest.approx(1.0, abs=1e-6)
        for v in range(small_graph.num_vertices):
            assert result[v] == pytest.approx(expected[v], abs=1e-4), v

    def test_iteration_cap(self, small_graph):
        pr = PageRank(small_graph, max_iterations=2)
        drain(pr)
        assert pr.iterations == 2

    def test_dangling_mass_conserved(self):
        # Vertex 2 is dangling (no out-edges).
        g = CsrGraph.from_edges(np.array([0, 1]), np.array([2, 2]), 3)
        pr = PageRank(g, max_iterations=50, epsilon=1e-12)
        drain(pr)
        assert pr.result().sum() == pytest.approx(1.0, abs=1e-9)


class TestRegistry:
    def test_names(self):
        assert set(workload_names()) == {"bfs", "sssp", "pagerank", "cc"}

    def test_create(self, small_weighted_graph):
        for name in workload_names():
            w = create_workload(name, small_weighted_graph)
            assert w.name == name

    def test_unknown(self, small_graph):
        with pytest.raises(WorkloadError):
            create_workload("bellman", small_graph)

    def test_needs_weights(self):
        assert workload_needs_weights("sssp")
        assert not workload_needs_weights("bfs")
        assert not workload_needs_weights("pagerank")

    def test_default_root_is_biggest_hub(self):
        g = CsrGraph.from_edges(
            np.array([2, 2, 2, 0]), np.array([0, 1, 3, 1]), 4
        )
        assert default_root(g) == 2
