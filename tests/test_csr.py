"""Unit tests for the CSR graph structure."""

import numpy as np
import pytest

from repro.errors import GraphError
from repro.graph.csr import CsrGraph, concat_ranges


class TestConcatRanges:
    def test_basic(self):
        out = concat_ranges(np.array([5, 0]), np.array([3, 2]))
        assert out.tolist() == [5, 6, 7, 0, 1]

    def test_zero_counts_skipped(self):
        out = concat_ranges(np.array([5, 9, 1]), np.array([0, 2, 0]))
        assert out.tolist() == [9, 10]

    def test_empty(self):
        assert concat_ranges(np.array([]), np.array([])).size == 0

    def test_all_zero(self):
        assert concat_ranges(np.array([3, 4]), np.array([0, 0])).size == 0


class TestFromEdges:
    def test_builds_csr(self):
        g = CsrGraph.from_edges(
            np.array([0, 0, 1, 2]), np.array([1, 2, 2, 0]), 3
        )
        assert g.num_vertices == 3
        assert g.num_edges == 4
        assert g.neighbors(0).tolist() == [1, 2]
        assert g.neighbors(1).tolist() == [2]
        assert g.neighbors(2).tolist() == [0]

    def test_preserves_edge_order_within_source(self):
        g = CsrGraph.from_edges(
            np.array([1, 0, 1]), np.array([5, 3, 2]), 6
        )
        assert g.neighbors(1).tolist() == [5, 2]

    def test_weights_follow_edges(self):
        g = CsrGraph.from_edges(
            np.array([1, 0]), np.array([2, 1]), 3,
            weights=np.array([7, 9]),
        )
        assert g.weights.tolist() == [9, 7]

    def test_duplicates_and_self_loops_kept(self):
        g = CsrGraph.from_edges(
            np.array([0, 0, 1]), np.array([1, 1, 1]), 2
        )
        assert g.num_edges == 3
        assert g.neighbors(0).tolist() == [1, 1]
        assert g.neighbors(1).tolist() == [1]

    def test_out_of_range_rejected(self):
        with pytest.raises(GraphError):
            CsrGraph.from_edges(np.array([0]), np.array([5]), 3)
        with pytest.raises(GraphError):
            CsrGraph.from_edges(np.array([-1]), np.array([0]), 3)

    def test_mismatched_lengths(self):
        with pytest.raises(GraphError):
            CsrGraph.from_edges(np.array([0]), np.array([0, 1]), 3)


class TestValidation:
    def test_indptr_must_start_at_zero(self):
        with pytest.raises(GraphError):
            CsrGraph(np.array([1, 2]), np.array([0]))

    def test_indptr_monotone(self):
        with pytest.raises(GraphError):
            CsrGraph(np.array([0, 2, 1]), np.array([0, 0]))

    def test_indptr_end_matches_edges(self):
        with pytest.raises(GraphError):
            CsrGraph(np.array([0, 3]), np.array([0, 0]))

    def test_destinations_in_range(self):
        with pytest.raises(GraphError):
            CsrGraph(np.array([0, 1]), np.array([5]))

    def test_weights_shape(self):
        with pytest.raises(GraphError):
            CsrGraph(
                np.array([0, 1]), np.array([0]), weights=np.array([1, 2])
            )


class TestDegrees:
    def test_out_degrees(self, small_graph):
        assert small_graph.out_degrees().sum() == small_graph.num_edges

    def test_in_degrees(self, small_graph):
        ins = small_graph.in_degrees()
        assert ins.sum() == small_graph.num_edges
        # In-degree is the property-access frequency: recompute directly.
        expected = np.bincount(
            small_graph.indices, minlength=small_graph.num_vertices
        )
        assert np.array_equal(ins, expected)

    def test_average_degree(self):
        g = CsrGraph.from_edges(np.array([0, 1]), np.array([1, 0]), 4)
        assert g.average_degree == pytest.approx(0.5)


class TestTranspose:
    def test_transpose_reverses_edges(self):
        g = CsrGraph.from_edges(np.array([0, 1]), np.array([1, 2]), 3)
        t = g.transpose()
        assert t.neighbors(1).tolist() == [0]
        assert t.neighbors(2).tolist() == [1]
        assert t.num_edges == g.num_edges

    def test_double_transpose_preserves_structure(self, small_graph):
        tt = small_graph.transpose().transpose()
        assert np.array_equal(tt.indptr, small_graph.indptr)
        # Neighbor multisets per vertex must match.
        for v in range(small_graph.num_vertices):
            assert sorted(tt.neighbors(v).tolist()) == sorted(
                small_graph.neighbors(v).tolist()
            )


class TestRelabel:
    def test_relabel_identity(self, small_graph):
        perm = np.arange(small_graph.num_vertices)
        g = small_graph.relabel(perm)
        assert np.array_equal(g.indptr, small_graph.indptr)
        assert np.array_equal(g.indices, small_graph.indices)

    def test_relabel_swaps(self):
        g = CsrGraph.from_edges(
            np.array([0, 0, 1]), np.array([1, 2, 2]), 3,
            weights=np.array([10, 20, 30]),
        )
        perm = np.array([2, 0, 1])  # 0->2, 1->0, 2->1
        r = g.relabel(perm)
        # Old vertex 1 (new 0) had edge to old 2 (new 1), weight 30.
        assert r.neighbors(0).tolist() == [1]
        assert r.weights[r.indptr[0]] == 30
        # Old vertex 0 (new 2) had edges to old 1,2 -> new 0,1.
        assert r.neighbors(2).tolist() == [0, 1]

    def test_relabel_rejects_non_permutation(self, small_graph):
        with pytest.raises(GraphError):
            small_graph.relabel(
                np.zeros(small_graph.num_vertices, dtype=np.int64)
            )
        with pytest.raises(GraphError):
            small_graph.relabel(np.array([0, 1]))

    def test_relabel_preserves_edge_count_and_degrees(self, small_graph):
        rng = np.random.default_rng(5)
        perm = rng.permutation(small_graph.num_vertices)
        r = small_graph.relabel(perm)
        assert r.num_edges == small_graph.num_edges
        assert np.array_equal(
            np.sort(r.out_degrees()), np.sort(small_graph.out_degrees())
        )
        assert np.array_equal(
            np.sort(r.in_degrees()), np.sort(small_graph.in_degrees())
        )


class TestEdgeEndpoints:
    def test_roundtrip(self, small_graph):
        src, dst = small_graph.edge_endpoints()
        rebuilt = CsrGraph.from_edges(src, dst, small_graph.num_vertices)
        assert np.array_equal(rebuilt.indptr, small_graph.indptr)
        assert np.array_equal(rebuilt.indices, small_graph.indices)

    def test_with_weights(self, small_graph):
        w = np.arange(small_graph.num_edges)
        g = small_graph.with_weights(w)
        assert g.weights is not None
        assert g.num_edges == small_graph.num_edges
