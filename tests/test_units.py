"""Unit tests for byte-unit helpers."""

from repro.units import (
    GiB,
    KiB,
    MiB,
    align_down,
    align_up,
    format_bytes,
    format_count,
    is_power_of_two,
)


def test_constants():
    assert KiB == 1024
    assert MiB == 1024 * KiB
    assert GiB == 1024 * MiB


def test_format_bytes():
    assert format_bytes(0) == "0.0B"
    assert format_bytes(4096) == "4.0KiB"
    assert format_bytes(3 * MiB + 512 * KiB) == "3.5MiB"
    assert format_bytes(2 * GiB) == "2.0GiB"


def test_format_count():
    assert format_count(1_050_000_000) == "1.05B"
    assert format_count(34_000_000) == "34M"
    assert format_count(12) == "12"


def test_is_power_of_two():
    assert is_power_of_two(1)
    assert is_power_of_two(4096)
    assert not is_power_of_two(0)
    assert not is_power_of_two(3)
    assert not is_power_of_two(-4)


def test_align():
    assert align_down(4097, 4096) == 4096
    assert align_up(4097, 4096) == 8192
    assert align_up(4096, 4096) == 4096
    assert align_down(4096, 4096) == 4096
