"""Unit tests for the page cache model (§4.3 single-use interference)."""

import pytest

from repro.errors import ConfigError
from repro.mem.page_cache import PageCache
from repro.mem.physical import PhysicalMemory


@pytest.fixture
def cache(physical: PhysicalMemory) -> PageCache:
    return PageCache(physical.nodes)


class TestReadFile:
    def test_populates_cache(self, cache, physical):
        node = physical.node(0)
        page = node.config.pages.base_page_size
        frames = cache.read_file("g.el", 10 * page, node_id=0)
        assert frames == 10
        assert cache.cached_bytes(0) == 10 * page
        assert node.free_frame_count == node.num_frames - 10

    def test_direct_io_bypasses(self, cache, physical):
        frames = cache.read_file("g.el", 65536, node_id=0, direct_io=True)
        assert frames == 0
        assert cache.cached_bytes(0) == 0

    def test_partial_population_under_pressure(self, cache, physical):
        node = physical.node(0)
        page = node.config.pages.base_page_size
        # Fill the node almost completely first.
        cache.read_file("big", node.free_bytes - 2 * page, node_id=0)
        frames = cache.read_file("late", 10 * page, node_id=0)
        assert frames == 2  # admission capped by free memory

    def test_remote_node_placement(self, cache, physical):
        cache.read_file("g.el", 65536, node_id=1)
        assert cache.cached_bytes(1) > 0
        assert cache.cached_bytes(0) == 0
        assert physical.node(0).free_frame_count == physical.node(0).num_frames

    def test_unknown_node(self, cache):
        with pytest.raises(ConfigError):
            cache.read_file("g.el", 4096, node_id=7)


class TestEviction:
    def test_evict_file(self, cache, physical):
        node = physical.node(0)
        cache.read_file("a", 65536, node_id=0)
        cache.read_file("b", 65536, node_id=0)
        cache.evict_file("a")
        assert cache.cached_bytes(0) == 65536
        cache.evict_file("missing")  # no-op

    def test_drop_caches(self, cache, physical):
        node = physical.node(0)
        cache.read_file("a", 65536, node_id=0)
        cache.read_file("b", 65536, node_id=1)
        dropped = cache.drop_caches()
        assert dropped == 32
        assert cache.cached_bytes(0) == 0
        assert cache.cached_bytes(1) == 0
        assert node.free_frame_count == node.num_frames


class TestReclaimIntegration:
    def test_cache_frames_are_reclaimable_for_huge_allocation(
        self, cache, physical
    ):
        """Fault-path reclaim may drop cache pages to assemble huge
        regions — the §4.3 interference is repairable at a cost."""
        node = physical.node(0)
        cache.read_file("g.el", node.free_bytes, node_id=0)
        assert node.pristine_region_count() == 0
        owner = node.register_owner(cache)
        region = node.alloc_huge_region(
            owner, allow_compaction=True, allow_reclaim=True
        )
        assert region is not None
        assert node.ledger.counts["reclaim"] >= node.frames_per_region
        # The cache lost exactly the reclaimed bytes.
        page = node.config.pages.base_page_size
        assert cache.cached_bytes(0) <= node.num_frames * page

    def test_reclaim_disallowed_blocks(self, cache, physical):
        node = physical.node(0)
        cache.read_file("g.el", node.free_bytes, node_id=0)
        owner = node.register_owner(cache)
        assert (
            node.alloc_huge_region(
                owner, allow_compaction=False, allow_reclaim=False
            )
            is None
        )
