"""Tests for the experiment harness: scenarios, policies, caching,
reporting."""

import pytest

from repro.config import tiny
from repro.experiments.harness import ExperimentRunner
from repro.experiments.policies import (
    POLICIES,
    get_policy,
    selective_policy,
)
from repro.experiments.reporting import format_table, geomean
from repro.experiments.scenarios import (
    SCENARIOS,
    Scenario,
    constrained,
    fragmented,
    fresh,
    oversubscribed,
)
from repro.mem.thp import ThpMode


@pytest.fixture
def runner():
    """A TINY-profile runner over the fast test dataset."""
    return ExperimentRunner(
        config=tiny(), datasets=("test-small",), pagerank_iterations=2
    )


class TestScenarios:
    def test_fresh_is_unpressured(self):
        assert not fresh().is_pressured
        assert fresh().frag_level == 0.0

    def test_constrained(self):
        s = constrained(1.5)
        assert s.is_pressured
        assert s.pressure_gb == 1.5
        assert "1.5" in s.name

    def test_fragmented_defaults_low_pressure(self):
        s = fragmented(0.5)
        assert s.frag_level == 0.5
        assert s.pressure_gb == 3.0

    def test_oversubscribed_is_negative(self):
        assert oversubscribed(0.5).pressure_gb == -0.5

    def test_registry(self):
        assert set(SCENARIOS) == {
            "fresh",
            "high-pressure",
            "low-pressure",
            "frag-50",
            "oversubscribed",
        }

    def test_scenarios_hashable(self):
        assert len({fresh(), constrained(1.0), constrained(1.0)}) == 2


class TestPolicies:
    def test_registry_covers_paper_bars(self):
        for name in (
            "base4k",
            "thp",
            "thp-opt",
            "madv-vertex",
            "madv-edge",
            "madv-values",
            "madv-property",
            "dbg",
            "dbg+thp",
        ):
            assert name in POLICIES

    def test_modes(self):
        assert get_policy("base4k").make_thp().mode is ThpMode.NEVER
        assert get_policy("thp").make_thp().mode is ThpMode.ALWAYS
        assert get_policy("madv-property").make_thp().mode is ThpMode.MADVISE

    def test_policy_factories_return_fresh_objects(self):
        a = get_policy("thp").make_thp()
        b = get_policy("thp").make_thp()
        assert a is not b

    def test_selective_policy(self):
        policy = selective_policy(0.2, reorder="original")
        assert policy.make_thp().mode is ThpMode.MADVISE
        assert policy.plan.reorder == "original"


class TestRunner:
    def test_cell_runs_and_caches(self, runner):
        a = runner.run_cell("bfs", "test-small", POLICIES["base4k"], fresh())
        b = runner.run_cell("bfs", "test-small", POLICIES["base4k"], fresh())
        assert a is b  # cached
        runner.clear_cache()
        c = runner.run_cell("bfs", "test-small", POLICIES["base4k"], fresh())
        assert c is not a
        assert c.kernel_cycles == a.kernel_cycles  # deterministic

    def test_different_policies_different_cells(self, runner):
        a = runner.run_cell("bfs", "test-small", POLICIES["base4k"], fresh())
        b = runner.run_cell("bfs", "test-small", POLICIES["thp"], fresh())
        assert a is not b

    def test_reorder_charges_preprocessing(self, runner):
        run = runner.run_cell("bfs", "test-small", POLICIES["dbg"], fresh())
        assert run.preprocess_cycles > 0
        base = runner.run_cell(
            "bfs", "test-small", POLICIES["base4k"], fresh()
        )
        assert base.preprocess_cycles == 0

    def test_sssp_gets_weighted_graph(self, runner):
        run = runner.run_cell(
            "sssp", "test-small", POLICIES["base4k"], fresh()
        )
        assert run.workload == "sssp"

    def test_pressured_scenario_constrains_memory(self, runner):
        run = runner.run_cell(
            "bfs", "test-small", POLICIES["thp"], constrained(0.5)
        )
        assert run.context["pressure_gb"] == 0.5

    def test_speedup_helper(self, runner):
        s = runner.speedup(
            "bfs",
            "test-small",
            POLICIES["base4k"],
            fresh(),
            POLICIES["base4k"],
        )
        assert s == pytest.approx(1.0)


class TestReporting:
    def test_format_table(self):
        rows = [
            {"a": 1, "b": 0.123456},
            {"a": 22, "b": 7.0},
        ]
        text = format_table(rows, title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "0.123" in text
        assert "22" in text

    def test_format_empty(self):
        assert "(no rows)" in format_table([])

    def test_missing_columns_blank(self):
        text = format_table([{"a": 1}, {"b": 2}], columns=["a", "b"])
        assert "a" in text and "b" in text

    def test_geomean(self):
        assert geomean([2.0, 8.0]) == pytest.approx(4.0)
        assert geomean([]) == 0.0
        assert geomean([1.0, 0.0, 4.0]) == pytest.approx(2.0)
