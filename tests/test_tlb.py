"""Unit tests for the set-associative TLB structure."""

import pytest

from repro.config import TlbGeometry
from repro.tlb.tlb import SetAssociativeTlb


def make(entries=8, ways=4):
    return SetAssociativeTlb(TlbGeometry(entries=entries, ways=ways))


class TestBasics:
    def test_miss_then_hit(self):
        tlb = make()
        assert tlb.access(2 << 1) is False
        assert tlb.access(2 << 1) is True
        assert tlb.hits == 1
        assert tlb.misses == 1

    def test_occupancy(self):
        tlb = make()
        for vpn in range(5):
            tlb.access(vpn << 1)
        assert tlb.occupancy == 5

    def test_set_index_uses_page_bits(self):
        tlb = make(entries=8, ways=2)  # 4 sets
        # Keys with the same page number but different size bits share a
        # set (the size bit is not part of the index).
        assert tlb.set_index((5 << 1) | 1) == tlb.set_index(5 << 1)
        assert tlb.set_index(4 << 1) != tlb.set_index(5 << 1)

    def test_flush(self):
        tlb = make()
        tlb.access(1 << 1)
        tlb.flush()
        assert tlb.occupancy == 0
        assert tlb.access(1 << 1) is False

    def test_invalidate(self):
        tlb = make()
        tlb.access(1 << 1)
        assert tlb.invalidate(1 << 1) is True
        assert tlb.invalidate(1 << 1) is False
        assert tlb.access(1 << 1) is False

    def test_reset_counters_keeps_contents(self):
        tlb = make()
        tlb.access(1 << 1)
        tlb.reset_counters()
        assert tlb.hits == 0 and tlb.misses == 0
        assert tlb.access(1 << 1) is True


class TestLruReplacement:
    def test_lru_eviction_order(self):
        """With 1 set of 2 ways, the least recently used entry leaves."""
        tlb = make(entries=2, ways=2)
        a, b, c = (vpn << 1 for vpn in (0, 1, 2))
        tlb.access(a)
        tlb.access(b)
        tlb.access(a)  # refresh a; b is now LRU
        tlb.access(c)  # evicts b
        assert tlb.probe(a)
        assert not tlb.probe(b)
        assert tlb.probe(c)

    def test_insert_returns_evicted(self):
        tlb = make(entries=2, ways=2)
        assert tlb.insert(0 << 1) is None
        assert tlb.insert(1 << 1) is None
        evicted = tlb.insert(2 << 1)
        assert evicted == 0 << 1

    def test_conflict_only_within_set(self):
        tlb = make(entries=4, ways=1)  # 4 direct-mapped sets
        # Pages 0 and 4 collide; page 1 does not.
        tlb.access(0 << 1)
        tlb.access(1 << 1)
        tlb.access(4 << 1)  # evicts page 0
        assert not tlb.probe(0 << 1)
        assert tlb.probe(1 << 1)
        assert tlb.probe(4 << 1)

    def test_working_set_within_capacity_never_misses_twice(self):
        """Any working set that fits one set's ways has only cold
        misses."""
        tlb = make(entries=4, ways=4)  # fully associative
        keys = [vpn << 1 for vpn in range(4)]
        for key in keys:
            tlb.access(key)
        for _ in range(3):
            for key in keys:
                assert tlb.access(key) is True

    def test_thrash_beyond_capacity(self):
        """A cyclic working set one larger than a fully-associative TLB
        misses every access under LRU."""
        tlb = make(entries=4, ways=4)
        keys = [vpn << 1 for vpn in range(5)]
        for _ in range(3):
            for key in keys:
                tlb.access(key)
        assert tlb.hits == 0
