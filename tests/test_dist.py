"""Tests for repro.dist: address parsing, the lease table, wire
encoding, network chaos, the client retry loop, and a small end-to-end
coordinator/worker exchange over a UNIX socket."""

from __future__ import annotations

import os
import subprocess
import sys
import time

import pytest

from repro.chaos.plan import (
    ChaosPlan,
    POINT_NET_CONNECT,
    POINT_NET_RECV,
    POINT_NET_SEND,
)
from repro.config import get_profile
from repro.dist import (
    DistConfig,
    DistCoordinator,
    LeaseTable,
    NetChaos,
    NetFaultError,
    encode_cell,
    parse_connect,
)
from repro.errors import ConfigError, DistError, ServiceError
from repro.experiments import ExperimentRunner, RunConfig
from repro.experiments.parse import parse_policy, parse_scenario
from repro.runstate.serialize import encode_result
from repro.serve.client import ClientResponse, SweepClient


def _runner() -> ExperimentRunner:
    return ExperimentRunner(
        config=get_profile("scaled"), run_config=RunConfig()
    )


# ----------------------------------------------------------------------
# parse_connect
# ----------------------------------------------------------------------


class TestParseConnect:
    def test_unix_socket_paths(self, tmp_path):
        path = str(tmp_path / "c.sock")
        assert parse_connect(path) == (path, "", 0)
        assert parse_connect("relative.sock") == ("relative.sock", "", 0)

    def test_host_port(self):
        assert parse_connect("10.0.0.5:7000") == (None, "10.0.0.5", 7000)

    def test_bare_port_is_loopback(self):
        assert parse_connect("7000") == (None, "127.0.0.1", 7000)

    def test_rejects_garbage(self):
        with pytest.raises(ConfigError):
            parse_connect("")
        with pytest.raises(ConfigError):
            parse_connect("host:notaport")


# ----------------------------------------------------------------------
# DistConfig
# ----------------------------------------------------------------------


class TestDistConfig:
    def test_validation(self):
        with pytest.raises(ConfigError):
            DistConfig(lease_seconds=0)
        with pytest.raises(ConfigError):
            DistConfig(max_lease_attempts=0)
        with pytest.raises(ConfigError):
            DistConfig(local_grace_seconds=-1)

    def test_worker_settings_cover_fingerprint_inputs(self):
        runner = _runner()
        settings = DistConfig(faults_text="compaction:after=3").worker_settings(
            runner
        )
        assert settings["profile"] == "scaled"
        assert settings["faults"] == "compaction:after=3"
        assert set(settings) == {
            "profile", "pagerank_iterations", "retries", "cell_budget",
            "cell_cycles", "cell_deadline_seconds", "faults", "fault_seed",
        }


# ----------------------------------------------------------------------
# LeaseTable (fake clock throughout)
# ----------------------------------------------------------------------


def _table(specs=("a", "b"), lease_seconds=10.0, max_attempts=3):
    return LeaseTable(
        {spec: {"spec": spec} for spec in specs},
        lease_seconds=lease_seconds,
        max_attempts=max_attempts,
    )


class TestLeaseTable:
    def test_grants_in_sorted_spec_order(self):
        table = _table(("b", "a"))
        first = table.lease("w1", now=0.0)
        second = table.lease("w2", now=0.0)
        assert (first.spec, second.spec) == ("a", "b")
        assert table.lease("w3", now=0.0) is None

    def test_expiry_requeues_and_attempts_grow(self):
        table = _table(("a",), lease_seconds=5.0)
        lease = table.lease("w1", now=0.0)
        assert lease.attempt == 1
        assert table.expire(now=4.9) == []
        expired = table.expire(now=5.0)
        assert [entry.spec for entry in expired] == ["a"]
        again = table.lease("w2", now=6.0)
        assert again.spec == "a" and again.attempt == 2
        assert not table.exhausted("a")
        table.expire(now=100.0)
        table.lease("w3", now=100.0)
        assert table.exhausted("a")

    def test_renew_extends_deadline(self):
        table = _table(("a",), lease_seconds=5.0)
        lease = table.lease("w1", now=0.0)
        assert table.renew(lease.lease_id, now=4.0) is lease
        assert table.expire(now=5.0) == []
        assert table.expire(now=9.0) != []
        assert table.renew(lease.lease_id, now=9.5) is None

    def test_complete_is_first_write_wins(self):
        table = _table(("a", "b"))
        table.lease("w1", now=0.0)
        assert table.complete("a") is True
        assert table.complete("a") is False
        assert table.done is False  # "b" still pending
        with pytest.raises(KeyError):
            table.complete("unknown")

    def test_late_completion_after_expiry_still_lands(self):
        table = _table(("a",), lease_seconds=1.0)
        table.lease("w1", now=0.0)
        table.expire(now=2.0)
        assert table.complete("a") is True
        # the re-queued spec must not be granted again
        assert table.lease("w2", now=3.0) is None

    def test_claim_local_and_remote_specs(self):
        table = _table(("a", "b", "c"))
        table.lease("w1", now=0.0)  # a
        assert list(table.remote_specs()) == ["a", "b", "c"]
        assert table.claim_local("a") is True
        assert table.claim_local("a") is False
        table.complete("b")
        assert list(table.remote_specs()) == ["c"]
        assert table.claim_local("b") is False


# ----------------------------------------------------------------------
# Wire encoding
# ----------------------------------------------------------------------


class TestEncodeCell:
    def test_named_policy_and_scenario_round_trip(self):
        runner = _runner()
        cell = (
            "bfs", "test-small", parse_policy("thp"),
            parse_scenario("fresh"),
        )
        task = encode_cell(runner, cell)
        assert task is not None
        assert task["spec"] == runner.cell_spec(*cell)
        replayed = runner.cell_spec(
            task["workload"], task["dataset"],
            parse_policy(task["policy"]), parse_scenario(task["scenario"]),
        )
        assert replayed == task["spec"]

    def test_parameterized_scenario_round_trip(self):
        runner = _runner()
        cell = (
            "bfs", "test-small", parse_policy("selective:0.25"),
            parse_scenario("fragmented:0.5:2"),
        )
        task = encode_cell(runner, cell)
        assert task is not None
        assert task["spec"] == runner.cell_spec(*cell)

    def test_inexpressible_cell_returns_none(self):
        import dataclasses

        runner = _runner()
        scenario = dataclasses.replace(
            parse_scenario("fresh"), name="mystery-scenario",
        )
        cell = ("bfs", "test-small", parse_policy("thp"), scenario)
        assert encode_cell(runner, cell) is None


# ----------------------------------------------------------------------
# Network chaos
# ----------------------------------------------------------------------


class TestNetChaos:
    def test_drop_fires_exactly_once_per_point_ordinal(self):
        chaos = NetChaos(ChaosPlan.parse("drop:net.send:2"))
        chaos.check(POINT_NET_SEND)
        with pytest.raises(NetFaultError):
            chaos.check(POINT_NET_SEND)
        chaos.check(POINT_NET_SEND)
        assert chaos.fired == [("drop", POINT_NET_SEND, 2)]

    def test_point_ordinals_count_independently(self):
        chaos = NetChaos(ChaosPlan.parse("drop:net.recv:1"))
        chaos.check(POINT_NET_CONNECT)
        chaos.check(POINT_NET_SEND)
        with pytest.raises(NetFaultError):
            chaos.check(POINT_NET_RECV)

    def test_sever_is_a_threshold_that_never_heals(self):
        chaos = NetChaos(ChaosPlan.parse("sever:net.partition:3"))
        chaos.check(POINT_NET_CONNECT)
        chaos.check(POINT_NET_SEND)
        for point in (POINT_NET_RECV, POINT_NET_CONNECT, POINT_NET_SEND):
            with pytest.raises(NetFaultError):
                chaos.check(point)
        assert all(action == "sever" for action, _, _ in chaos.fired)

    def test_delay_stalls_and_notifies_listener(self):
        events = []
        chaos = NetChaos(
            ChaosPlan.parse("delay:net.send:1"), delay_seconds=0.0,
            listener=lambda name, **f: events.append((name, f)),
        )
        chaos.check(POINT_NET_SEND)
        assert events == [
            ("net.delay", {"point": POINT_NET_SEND, "ordinal": 1})
        ]

    def test_plan_grammar_rejects_bad_net_combos(self):
        with pytest.raises(ConfigError):
            ChaosPlan.parse("delay:net.connect:1")
        with pytest.raises(ConfigError):
            ChaosPlan.parse("sever:net.send:1")
        with pytest.raises(ConfigError):
            ChaosPlan.parse("drop:net.partition:1")


# ----------------------------------------------------------------------
# Client bounded retry
# ----------------------------------------------------------------------


class _ScriptedClient(SweepClient):
    """A client whose request() replays a scripted outcome sequence."""

    def __init__(self, outcomes):
        super().__init__(host="127.0.0.1", port=1)
        self.outcomes = list(outcomes)
        self.calls = 0

    def request(self, method, path, payload=None):
        self.calls += 1
        outcome = self.outcomes.pop(0)
        if isinstance(outcome, Exception):
            raise outcome
        return outcome


def _response(status, retry_after=None):
    return ClientResponse(
        status=status, body={}, raw=b"{}", retry_after=retry_after
    )


class TestRequestWithRetry:
    def test_oserror_then_success(self):
        sleeps = []
        client = _ScriptedClient(
            [ConnectionRefusedError("boom"), _response(200)]
        )
        response = client.request_with_retry(
            "POST", "/x", max_attempts=3, sleep=sleeps.append
        )
        assert response.status == 200
        assert client.calls == 2
        assert len(sleeps) == 1

    def test_retry_after_hint_is_honored_and_capped(self):
        sleeps = []
        client = _ScriptedClient(
            [_response(429, retry_after=1.5), _response(200)]
        )
        client.request_with_retry(
            "POST", "/x", max_attempts=2, backoff_base=0.1,
            backoff_max=2.0, sleep=sleeps.append,
        )
        assert 1.5 <= sleeps[0] <= 1.6  # hint + jitter, under the cap
        sleeps.clear()
        client = _ScriptedClient(
            [_response(429, retry_after=60.0), _response(200)]
        )
        client.request_with_retry(
            "POST", "/x", max_attempts=2, backoff_base=0.1,
            backoff_max=2.0, sleep=sleeps.append,
        )
        assert sleeps[0] <= 2.0 + 0.1  # server hint capped at backoff_max

    def test_exhausted_attempts_return_last_response(self):
        client = _ScriptedClient([_response(503)] * 3)
        response = client.request_with_retry(
            "POST", "/x", max_attempts=3, sleep=lambda _w: None
        )
        assert response.status == 503
        assert client.calls == 3

    def test_exhausted_attempts_reraise_last_oserror(self):
        client = _ScriptedClient(
            [ConnectionRefusedError("a"), ConnectionResetError("b")]
        )
        with pytest.raises(ConnectionResetError):
            client.request_with_retry(
                "POST", "/x", max_attempts=2, sleep=lambda _w: None
            )

    def test_non_retryable_status_returns_immediately(self):
        sleeps = []
        client = _ScriptedClient([_response(404)])
        response = client.request_with_retry(
            "POST", "/x", max_attempts=5, sleep=sleeps.append
        )
        assert response.status == 404
        assert sleeps == []

    def test_deterministic_for_a_seed(self):
        waits = []
        for _ in range(2):
            sleeps = []
            client = _ScriptedClient([_response(503)] * 4)
            client.request_with_retry(
                "POST", "/x", max_attempts=4, seed=7, sleep=sleeps.append
            )
            waits.append(tuple(sleeps))
        assert waits[0] == waits[1]

    def test_rejects_bad_max_attempts(self):
        client = _ScriptedClient([])
        with pytest.raises(ServiceError):
            client.request_with_retry("POST", "/x", max_attempts=0)


# ----------------------------------------------------------------------
# Coordinator end-to-end (UDS, one real worker subprocess)
# ----------------------------------------------------------------------


def _worker_env() -> dict[str, str]:
    import repro

    src_root = os.path.dirname(
        os.path.dirname(os.path.abspath(repro.__file__))
    )
    env = dict(os.environ)
    existing = env.get("PYTHONPATH", "")
    env["PYTHONPATH"] = (
        src_root + (os.pathsep + existing if existing else "")
    )
    return env


class TestCoordinatorEndToEnd:
    def test_batch_shards_to_worker_and_results_match_serial(self, tmp_path):
        cells = [
            ("bfs", "test-small", parse_policy("thp"),
             parse_scenario("fresh")),
            ("bfs", "test-small", parse_policy("base4k"),
             parse_scenario("fresh")),
        ]
        serial = _runner()
        expected = [
            encode_result(serial._execute_cell(*cell)) for cell in cells
        ]

        sock = str(tmp_path / "coord.sock")
        runner = _runner()
        coordinator = DistCoordinator(
            runner,
            DistConfig(socket_path=sock, local_grace_seconds=60.0),
        ).start()
        worker = subprocess.Popen(
            [
                sys.executable, "-m", "repro", "work",
                "--connect", sock,
                "--journal", str(tmp_path / "w.jsonl"),
                "--worker-id", "w-test",
                "--poll-interval", "0.05",
                "--idle-exit", "20",
            ],
            env=_worker_env(),
            stdout=subprocess.DEVNULL, stderr=subprocess.PIPE,
        )
        try:
            results = coordinator.execute_batch(cells)
            coordinator.drain()
            rc = worker.wait(timeout=30)
        finally:
            if worker.poll() is None:
                worker.kill()
            coordinator.stop()
        assert rc == 0
        assert [encode_result(result) for result in results] == expected
        events = coordinator.drain_events()
        names = [event["name"] for event in events]
        assert "dist.lease.grant" in names
        assert names.count("dist.result") == 2
        assert all(
            event.get("worker") == "w-test"
            for event in events if event["name"] == "dist.result"
        )
        from repro.obs.events import validate_events

        assert validate_events(events) == []

    def test_execute_batch_requires_running_loop(self):
        runner = _runner()
        coordinator = DistCoordinator(runner, DistConfig())
        with pytest.raises(DistError):
            coordinator.execute_batch([("bfs", "test-small", None, None)])

    def test_status_endpoint_and_idle_lease(self, tmp_path):
        sock = str(tmp_path / "coord.sock")
        runner = _runner()
        coordinator = DistCoordinator(
            runner, DistConfig(socket_path=sock)
        ).start()
        try:
            client = SweepClient(socket_path=sock, timeout=5.0)
            health = client.request("GET", "/v1/healthz")
            assert health.ok and health.body["role"] == "coordinator"
            idle = client.request(
                "POST", "/v1/dist/lease", {"worker": "probe"}
            )
            assert idle.ok
            assert idle.body["done"] is False
            assert idle.body["task"] is None
            status = client.request("GET", "/v1/dist/status")
            assert status.ok
            assert status.body["mode"] == "remote"
            assert status.body["workers"] == ["probe"]
            assert status.body["schema_problems"] == []
            missing = client.request("GET", "/v1/nope")
            assert missing.status == 404
        finally:
            coordinator.drain()
            coordinator.stop()

    def test_drained_coordinator_tells_workers_done(self, tmp_path):
        sock = str(tmp_path / "coord.sock")
        runner = _runner()
        coordinator = DistCoordinator(
            runner, DistConfig(socket_path=sock)
        ).start()
        try:
            coordinator.drain()
            client = SweepClient(socket_path=sock, timeout=5.0)
            deadline = time.monotonic() + 5.0  # repro: noqa REP001 — observation timeout
            while time.monotonic() < deadline:  # repro: noqa REP001 — observation timeout
                response = client.request(
                    "POST", "/v1/dist/lease", {"worker": "w"}
                )
                if response.body.get("done"):
                    break
                time.sleep(0.05)
            assert response.body["done"] is True
        finally:
            coordinator.stop()
