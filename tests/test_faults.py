"""Tests for the fault-injection subsystem: specs, plan parsing, the
injector's deterministic triggers, and the wired injection sites."""

import pytest

from repro.config import tiny
from repro.errors import ConfigError, InjectedFaultError
from repro.faults import (
    FaultInjector,
    FaultPlan,
    FaultSite,
    FaultSpec,
    SITES_BY_NAME,
)
from repro.machine.machine import Machine
from repro.mem.page_cache import PageCache
from repro.mem.physical import NodeMemory, PhysicalMemory
from repro.mem.stats import KernelLedger
from repro.mem.swap import SwapDevice
from repro.mem.thp import ThpPolicy
from repro.workloads.registry import create_workload


def plan_for(text, seed=0):
    return FaultPlan.parse(text, seed=seed)


class TestFaultSpec:
    def test_requires_exactly_one_trigger(self):
        with pytest.raises(ConfigError):
            FaultSpec(site=FaultSite.ALLOC)
        with pytest.raises(ConfigError):
            FaultSpec(site=FaultSite.ALLOC, probability=0.5, after_n=3)

    def test_probability_range(self):
        with pytest.raises(ConfigError):
            FaultSpec(site=FaultSite.ALLOC, probability=1.5)
        with pytest.raises(ConfigError):
            FaultSpec(site=FaultSite.ALLOC, probability=-0.1)
        # 0.0 is legal: an armed-but-never-firing spec (overhead probes).
        FaultSpec(site=FaultSite.ALLOC, probability=0.0)

    def test_counter_triggers_validated(self):
        with pytest.raises(ConfigError):
            FaultSpec(site=FaultSite.ALLOC, after_n=-1)
        with pytest.raises(ConfigError):
            FaultSpec(site=FaultSite.ALLOC, every_nth=0)
        with pytest.raises(ConfigError):
            FaultSpec(site=FaultSite.ALLOC, probability=1.0, max_fires=0)
        # after_n=0 is legal: fail from the very first evaluation.
        FaultSpec(site=FaultSite.ALLOC, after_n=0)

    def test_trigger_label(self):
        assert "p=" in FaultSpec(
            site=FaultSite.ALLOC, probability=0.5
        ).trigger_label
        assert "after" in FaultSpec(
            site=FaultSite.ALLOC, after_n=3
        ).trigger_label


class TestFaultPlanParse:
    def test_bare_site_means_certain(self):
        plan = plan_for("compaction")
        (spec,) = plan.specs
        assert spec.site is FaultSite.COMPACTION
        assert spec.probability == 1.0

    def test_probability_trigger(self):
        (spec,) = plan_for("alloc:0.25").specs
        assert spec.site is FaultSite.ALLOC
        assert spec.probability == 0.25

    def test_counter_triggers(self):
        plan = plan_for("swap-out:after=10,swap-in:every=3")
        assert plan.specs[0].after_n == 10
        assert plan.specs[1].every_nth == 3

    def test_max_fires(self):
        (spec,) = plan_for("reclaim:1.0:max=2").specs
        assert spec.max_fires == 2

    def test_every_site_name_parses(self):
        for name in SITES_BY_NAME:
            (spec,) = plan_for(name).specs
            assert spec.site.value == name

    def test_unknown_site_rejected(self):
        with pytest.raises(ConfigError):
            plan_for("warp-core:0.5")

    def test_malformed_trigger_rejected(self):
        with pytest.raises(ConfigError):
            plan_for("alloc:sometimes")
        with pytest.raises(ConfigError):
            plan_for("alloc:after=x")

    def test_empty_plan_disabled(self):
        plan = FaultPlan(specs=())
        assert not plan.enabled
        assert plan_for("alloc").enabled


class TestInjectorTriggers:
    def test_certain_fires_first_evaluation(self):
        injector = plan_for("alloc:1.0").make_injector()
        with pytest.raises(InjectedFaultError) as exc:
            injector.check(FaultSite.ALLOC)
        assert exc.value.site is FaultSite.ALLOC
        assert exc.value.hit == 1
        assert exc.value.evaluation == 1

    def test_other_sites_unaffected(self):
        injector = plan_for("alloc:1.0").make_injector()
        injector.check(FaultSite.COMPACTION)  # no spec -> no fire
        assert injector.fires() == 0

    def test_after_n(self):
        # after=3: the first three evaluations succeed, then wear-out.
        injector = plan_for("swap-out:after=3").make_injector()
        for _ in range(3):
            injector.check(FaultSite.SWAP_OUT)
        with pytest.raises(InjectedFaultError) as exc:
            injector.check(FaultSite.SWAP_OUT)
        assert exc.value.evaluation == 4
        # Wear-out: keeps failing on every later evaluation.
        with pytest.raises(InjectedFaultError):
            injector.check(FaultSite.SWAP_OUT)

    def test_every_nth(self):
        injector = plan_for("reclaim:every=2").make_injector()
        fired = []
        for i in range(1, 7):
            try:
                injector.check(FaultSite.RECLAIM)
            except InjectedFaultError:
                fired.append(i)
        assert fired == [2, 4, 6]

    def test_max_fires_caps_transient_glitch(self):
        injector = plan_for("alloc:1.0:max=1").make_injector()
        with pytest.raises(InjectedFaultError):
            injector.check(FaultSite.ALLOC)
        # The glitch is spent: later evaluations pass (retry succeeds).
        injector.check(FaultSite.ALLOC)
        injector.check(FaultSite.ALLOC)
        assert injector.fires(FaultSite.ALLOC) == 1

    def test_probability_seed_determinism(self):
        plan = plan_for("alloc:0.3", seed=7)

        def fire_pattern():
            injector = plan.make_injector()
            pattern = []
            for _ in range(200):
                try:
                    injector.check(FaultSite.ALLOC)
                    pattern.append(False)
                except InjectedFaultError:
                    pattern.append(True)
            return pattern, list(injector.fire_log)

        first = fire_pattern()
        second = fire_pattern()
        assert first == second
        assert any(first[0])  # p=0.3 over 200 draws fires at least once

    def test_different_seeds_differ(self):
        def pattern(seed):
            injector = plan_for("alloc:0.3", seed=seed).make_injector()
            out = []
            for _ in range(100):
                try:
                    injector.check(FaultSite.ALLOC)
                    out.append(0)
                except InjectedFaultError:
                    out.append(1)
            return out

        assert pattern(1) != pattern(2)

    def test_summary(self):
        injector = plan_for("alloc:1.0:max=1").make_injector()
        with pytest.raises(InjectedFaultError):
            injector.check(FaultSite.ALLOC)
        injector.check(FaultSite.ALLOC)
        summary = injector.summary()
        assert summary["alloc"]["evaluations"] == 2
        assert summary["alloc"]["fires"] == 1


class TestWiredSites:
    def make_node(self, plan):
        cfg = tiny()
        node = NodeMemory(
            0, cfg, KernelLedger(cost=cfg.cost),
            injector=plan.make_injector(),
        )
        return node, node.register_owner(object())

    def test_alloc_site(self):
        node, owner = self.make_node(plan_for("alloc:1.0"))
        with pytest.raises(InjectedFaultError) as exc:
            node.alloc_frames(1, owner)
        assert exc.value.site is FaultSite.ALLOC
        # Nothing was allocated before the fault surfaced.
        assert node.free_frame_count == node.num_frames

    def test_zero_count_alloc_not_evaluated(self):
        node, owner = self.make_node(plan_for("alloc:1.0"))
        node.alloc_frames(0, owner)  # early return, no evaluation

    def test_compaction_site_only_on_assembly(self):
        from repro.mem.frag import Fragmenter

        node, owner = self.make_node(plan_for("compaction:1.0"))
        # Pristine regions need no assembly: no evaluation, no fault.
        assert node.alloc_huge_region(owner) is not None
        # Fragment so no free region is intact; the next huge allocation
        # must assemble one — the canonical compaction injection point.
        Fragmenter(node).fragment(1.0)
        with pytest.raises(InjectedFaultError) as exc:
            node.alloc_huge_region(owner)
        assert exc.value.site is FaultSite.COMPACTION

    def test_swap_sites_fire_before_counters(self):
        swap = SwapDevice(injector=plan_for("swap-out:1.0").make_injector())
        with pytest.raises(InjectedFaultError):
            swap.page_out()
        assert swap.pages_out == 0
        swap.page_in()  # swap-in unaffected
        assert swap.pages_in == 1

    def test_staging_site(self):
        cfg = tiny()
        physical = PhysicalMemory(cfg)
        cache = PageCache(
            physical.nodes, injector=plan_for("staging:1.0").make_injector()
        )
        with pytest.raises(InjectedFaultError) as exc:
            cache.read_file("input", 4096, 0)
        assert exc.value.site is FaultSite.STAGING
        # Direct I/O bypasses the cache and therefore the site.
        assert cache.read_file("input", 4096, 0, direct_io=True) == 0

    def test_promotion_gates_on_policy(self):
        policy = ThpPolicy.always()
        policy.injector = plan_for("promotion:1.0").make_injector()
        with pytest.raises(InjectedFaultError):
            policy.check_promotion()
        policy.check_demotion()  # other gates unaffected
        policy.check_khugepaged()


class TestMachineIntegration:
    def test_machine_builds_injector_from_plan(self, small_graph):
        machine = Machine(
            tiny(), ThpPolicy.always(), faults=plan_for("staging:1.0")
        )
        assert machine.fault_injector is not None
        workload = create_workload("bfs", small_graph)
        with pytest.raises(InjectedFaultError) as exc:
            machine.run(workload, load_bytes=4096)
        assert exc.value.site is FaultSite.STAGING

    def test_machine_run_identical_with_disarmed_plan(self, small_graph):
        baseline = Machine(tiny(), ThpPolicy.always()).run(
            create_workload("bfs", small_graph)
        )
        armed = Machine(
            tiny(), ThpPolicy.always(), faults=plan_for("alloc:0.0")
        ).run(create_workload("bfs", small_graph))
        assert armed.summary() == baseline.summary()

    def test_config_fault_plan_is_picked_up(self):
        from dataclasses import replace

        cfg = replace(tiny(), fault_plan=plan_for("alloc:1.0"))
        machine = Machine(cfg)
        assert machine.fault_injector is not None

    def test_injector_is_threaded_everywhere(self):
        injector = plan_for("alloc:0.0").make_injector()
        machine = Machine(tiny(), injector=injector)
        assert machine.swap.injector is injector
        assert machine.page_cache.injector is injector
        assert machine.thp.injector is injector
        assert all(n.injector is injector for n in machine.physical.nodes)
