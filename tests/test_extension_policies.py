"""Tests for the extension policies (managers, hugetlb, autotuner) in
the experiment harness, plus the advisor-driven reorder helper."""

import pytest

from repro.config import tiny
from repro.experiments.figures import recommended_reorder
from repro.experiments.harness import ExperimentRunner
from repro.experiments.policies import (
    POLICIES,
    autotuner_policy,
    hotness_manager_policy,
    hugetlb_policy,
    selective_policy,
    utilization_manager_policy,
)
from repro.experiments.scenarios import fragmented, fresh
from repro.mem.thp import ThpMode


@pytest.fixture
def runner():
    return ExperimentRunner(
        config=tiny(), datasets=("test-small",), pagerank_iterations=1
    )


class TestPolicyFactories:
    def test_manager_policies_carry_factories(self):
        for policy in (
            utilization_manager_policy(),
            hotness_manager_policy(),
            autotuner_policy(),
        ):
            assert policy.manager_factory is not None
            a = policy.make_manager()
            b = policy.make_manager()
            assert a is not b  # fresh per run
            # Managers run on top of promotion-only THP.
            thp = policy.make_thp()
            assert thp.mode is ThpMode.ALWAYS
            assert thp.fault_alloc is False

    def test_plain_policies_have_no_manager(self):
        assert POLICIES["thp"].make_manager() is None

    def test_hugetlb_policy_plan(self):
        policy = hugetlb_policy(0.5, reorder="original")
        assert policy.plan.hugetlb_fractions
        assert not policy.plan.advise_fractions
        assert policy.make_thp().mode is ThpMode.NEVER


class TestHarnessIntegration:
    def test_manager_cell_runs(self, runner):
        metrics = runner.run_cell(
            "bfs", "test-small", hotness_manager_policy(), fresh()
        )
        assert metrics.policy_label == "hawkeye"

    def test_hugetlb_cell_reserves_and_runs(self, runner):
        metrics = runner.run_cell(
            "bfs", "test-small", hugetlb_policy(1.0, reorder="original"),
            fresh(),
        )
        # test-small's property array is smaller than one TINY huge
        # chunk, so no chunk qualifies — the run must still complete.
        assert metrics.workload == "bfs"

    def test_cc_workload_through_harness(self, runner):
        metrics = runner.run_cell(
            "cc", "test-small", POLICIES["base4k"], fresh()
        )
        assert metrics.workload == "cc"
        assert metrics.translation.total_accesses > 0

    def test_manager_and_selective_cells_are_distinct(self, runner):
        a = runner.run_cell(
            "bfs", "test-small", hotness_manager_policy(), fresh()
        )
        b = runner.run_cell(
            "bfs", "test-small", selective_policy(0.5), fresh()
        )
        assert a is not b


class TestRecommendedReorder:
    def test_returns_known_ordering(self, runner):
        reorder = recommended_reorder(runner, "test-small")
        assert reorder in ("original", "dbg")
