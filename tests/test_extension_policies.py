"""Tests for the extension policies (managers, hugetlb, autotuner) in
the experiment harness, plus the advisor-driven reorder helper.

Policy construction goes through the zoo registry
(:mod:`repro.policy.registry`); the historical helper functions in
:mod:`repro.experiments.policies` are deprecation shims pinned by
``TestDeprecatedHelpers``.
"""

import pytest

from repro.config import tiny
from repro.experiments.figures import recommended_reorder
from repro.experiments.harness import ExperimentRunner
from repro.experiments.policies import (
    POLICIES,
    autotuner_policy,
    hotness_manager_policy,
    hugetlb_policy,
    selective_policy,
    utilization_manager_policy,
)
from repro.experiments.scenarios import fresh
from repro.mem.thp import ThpMode
from repro.policy.registry import get_policy


@pytest.fixture
def runner():
    return ExperimentRunner(
        config=tiny(), datasets=("test-small",), pagerank_iterations=1
    )


class TestPolicyFactories:
    def test_manager_policies_carry_factories(self):
        for policy in (
            get_policy("ingens"),
            get_policy("hawkeye"),
            get_policy("hawkeye-bits"),
            get_policy("autotuner"),
        ):
            assert policy.manager_factory is not None
            a = policy.make_manager()
            b = policy.make_manager()
            assert a is not b  # fresh per run
            # Managers run on top of promotion-only THP.
            thp = policy.make_thp()
            assert thp.mode is ThpMode.ALWAYS
            assert thp.fault_alloc is False

    def test_plain_policies_have_no_manager(self):
        assert POLICIES["thp"].make_manager() is None

    def test_hugetlb_policy_plan(self):
        policy = get_policy("hugetlb:fraction=0.5,reorder=original")
        assert policy.plan.hugetlb_fractions
        assert not policy.plan.advise_fractions
        assert policy.make_thp().mode is ThpMode.NEVER


class TestDeprecatedHelpers:
    """The pre-registry helper functions keep working, warn, and
    materialize the identical policy (same name, hence the same journal
    spec fingerprint)."""

    @pytest.mark.parametrize(
        "shim, kwargs, spec",
        [
            (utilization_manager_policy, {}, "ingens"),
            (hotness_manager_policy, {}, "hawkeye"),
            (autotuner_policy, {}, "autotuner"),
            (
                utilization_manager_policy,
                {"threshold": 0.8, "promotions_per_pass": 4},
                None,
            ),
        ],
    )
    def test_shims_warn_and_match_registry(self, shim, kwargs, spec):
        with pytest.warns(DeprecationWarning, match="deprecated"):
            policy = shim(**kwargs)
        assert policy.manager_factory is not None
        if spec is not None:
            via_registry = get_policy(spec)
            assert policy.name == via_registry.name
            assert policy.plan == via_registry.plan

    def test_hugetlb_helper_still_plain(self):
        # Not a boolean-knob shim: constructs the same policy the
        # registry's `hugetlb` entry delegates to, without warning.
        policy = hugetlb_policy(0.5, reorder="original")
        assert policy.plan.hugetlb_fractions


class TestHarnessIntegration:
    def test_manager_cell_runs(self, runner):
        metrics = runner.run_cell(
            "bfs", "test-small", get_policy("hawkeye"), fresh()
        )
        assert metrics.policy_label == "hawkeye"

    def test_hugetlb_cell_reserves_and_runs(self, runner):
        metrics = runner.run_cell(
            "bfs",
            "test-small",
            get_policy("hugetlb:fraction=1.0,reorder=original"),
            fresh(),
        )
        # test-small's property array is smaller than one TINY huge
        # chunk, so no chunk qualifies — the run must still complete.
        assert metrics.workload == "bfs"

    def test_cc_workload_through_harness(self, runner):
        metrics = runner.run_cell(
            "cc", "test-small", POLICIES["base4k"], fresh()
        )
        assert metrics.workload == "cc"
        assert metrics.translation.total_accesses > 0

    def test_manager_and_selective_cells_are_distinct(self, runner):
        a = runner.run_cell(
            "bfs", "test-small", get_policy("hawkeye"), fresh()
        )
        b = runner.run_cell(
            "bfs", "test-small", selective_policy(0.5), fresh()
        )
        assert a is not b


class TestRecommendedReorder:
    def test_returns_known_ordering(self, runner):
        reorder = recommended_reorder(runner, "test-small")
        assert reorder in ("original", "dbg")
